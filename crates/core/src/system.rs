//! The machine: NoC + tiles + clock, and the kernel management API.

use crate::checkpoint::CheckpointStore;
use crate::fault::{
    checkpoint_downtime, preemption_downtime, FaultAction, FaultPolicy, FaultRecord,
};
use crate::memsvc::MemoryService;
use crate::process::{AppId, OS_APP};
use crate::reconfig::ReconfigController;
use crate::supervisor::{
    AccelFactory, Incident, Phase, RecoveryTarget, ServiceSpec, Supervisor, SupervisorConfig,
};
use crate::tile::{KernelOs, ParkedTenant, Tile};
use apiary_accel::{Accelerator, CapEnv};
use apiary_cap::{CapError, CapKind, CapRef, Capability, EndpointId, Rights, ServiceId};
use apiary_mem::{AllocError, AllocPolicy, DramConfig, SegmentAllocator};
use apiary_monitor::{Monitor, MonitorConfig, TileState};
use apiary_noc::{Noc, NocConfig, NodeId};
use apiary_sim::{clock_mode, Clock, ClockMode, Cycle, Wakeup};
use apiary_trace::EventKind;
use core::fmt;

/// System-level configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// NoC geometry and parameters.
    pub noc: NocConfig,
    /// Per-tile monitor configuration.
    pub monitor: MonitorConfig,
    /// On-card DRAM capacity behind the memory service, in bytes.
    pub mem_capacity: u64,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Which node hosts the memory service (default: the last node).
    pub mem_node: Option<NodeId>,
    /// ICAP bandwidth for partial reconfiguration, bytes/cycle.
    pub icap_bytes_per_cycle: u64,
    /// Self-healing supervisor policy (off by default).
    pub supervisor: SupervisorConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            noc: NocConfig::default(),
            monitor: MonitorConfig::default(),
            mem_capacity: 16 << 20,
            dram: DramConfig::default(),
            mem_node: None,
            icap_bytes_per_cycle: 4,
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// Kernel API errors.
#[derive(Debug)]
pub enum SystemError {
    /// The node is outside the mesh.
    BadNode(NodeId),
    /// The tile already hosts an accelerator.
    SlotOccupied(NodeId),
    /// The tile hosts no accelerator.
    SlotEmpty(NodeId),
    /// Mutually distrusting applications may only be connected explicitly
    /// (§4.2); this connect lacked `allow_cross_app`.
    CrossAppConnect {
        /// Requesting tile.
        from: NodeId,
        /// Target tile.
        to: NodeId,
    },
    /// A capability-table operation failed.
    Cap(CapError),
    /// A memory allocation failed.
    Alloc(AllocError),
    /// Preemption requested on a non-preemptible accelerator.
    NotPreemptible(NodeId),
    /// The tile is being reconfigured.
    ReconfigInProgress(NodeId),
    /// Context swap requested on a tile with no parked tenant.
    NoParkedTenant(NodeId),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::BadNode(n) => write!(f, "node {n} outside mesh"),
            SystemError::SlotOccupied(n) => write!(f, "tile {n} already occupied"),
            SystemError::SlotEmpty(n) => write!(f, "tile {n} is empty"),
            SystemError::CrossAppConnect { from, to } => {
                write!(f, "cross-application connect {from} -> {to} not allowed")
            }
            SystemError::Cap(e) => write!(f, "capability: {e}"),
            SystemError::Alloc(e) => write!(f, "allocation: {e}"),
            SystemError::NotPreemptible(n) => write!(f, "tile {n} is not preemptible"),
            SystemError::ReconfigInProgress(n) => write!(f, "tile {n} is reconfiguring"),
            SystemError::NoParkedTenant(n) => write!(f, "tile {n} has no parked tenant"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<CapError> for SystemError {
    fn from(e: CapError) -> SystemError {
        SystemError::Cap(e)
    }
}

impl From<AllocError> for SystemError {
    fn from(e: AllocError) -> SystemError {
        SystemError::Alloc(e)
    }
}

/// A complete Apiary machine.
///
/// # Examples
///
/// ```
/// use apiary_core::{AppId, FaultPolicy, System, SystemConfig};
/// use apiary_accel::apps::echo::echo;
/// use apiary_noc::NodeId;
///
/// let mut sys = System::new(SystemConfig::default());
/// sys.install(NodeId(1), Box::new(echo(1)), AppId(1), FaultPolicy::FailStop)
///     .expect("slot free");
/// sys.run(10);
/// assert_eq!(sys.now().as_u64(), 10);
/// ```
pub struct System {
    cfg: SystemConfig,
    clock: Clock,
    noc: Noc,
    tiles: Vec<Tile>,
    allocator: SegmentAllocator,
    mem_node: NodeId,
    reconfig: ReconfigController,
    supervisor: Supervisor,
}

impl System {
    /// Boots a system: builds the mesh, instantiates monitors, and brings
    /// up the memory service tile.
    pub fn new(cfg: SystemConfig) -> System {
        let noc = Noc::new(cfg.noc);
        let nodes = noc.mesh().nodes();
        let tiles: Vec<Tile> = (0..nodes)
            .map(|i| Tile::new(Monitor::new(NodeId(i as u16), cfg.monitor)))
            .collect();
        let mem_node = cfg.mem_node.unwrap_or(NodeId(nodes as u16 - 1));
        let mem_capacity = cfg.mem_capacity;
        let dram = cfg.dram;
        let supervisor = Supervisor {
            free_spares: cfg.supervisor.spare_nodes.iter().copied().collect(),
            ..Supervisor::default()
        };
        let mut sys = System {
            clock: Clock::new(),
            noc,
            tiles,
            allocator: SegmentAllocator::new(cfg.mem_capacity, AllocPolicy::FirstFit),
            mem_node,
            reconfig: ReconfigController::new(cfg.icap_bytes_per_cycle),
            supervisor,
            cfg,
        };
        sys.install(
            mem_node,
            Box::new(MemoryService::new(mem_capacity, dram)),
            OS_APP,
            FaultPolicy::FailStop,
        )
        .expect("memory node is a valid empty slot at boot");
        sys
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.clock.now()
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The NoC (for stats).
    pub fn noc(&self) -> &Noc {
        &self.noc
    }

    /// Mutable NoC access (external injectors such as the network service
    /// front-end).
    pub fn noc_mut(&mut self) -> &mut Noc {
        &mut self.noc
    }

    /// The node hosting the memory service.
    pub fn mem_node(&self) -> NodeId {
        self.mem_node
    }

    /// Whether `node` has a partial reconfiguration in flight (its bitstream
    /// is still streaming through the ICAP). Orchestration layers must not
    /// tear a tile down mid-load: the completion would resurrect it.
    pub fn reconfiguring(&self, node: NodeId) -> bool {
        self.reconfig.in_progress(node)
    }

    /// Kernel-side allocator statistics (segment memory).
    pub fn mem_stats(&self) -> apiary_mem::AllocStats {
        self.allocator.stats()
    }

    fn check_node(&self, n: NodeId) -> Result<(), SystemError> {
        if self.noc.mesh().contains(n) {
            Ok(())
        } else {
            Err(SystemError::BadNode(n))
        }
    }

    /// Immutable tile access.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-mesh node.
    pub fn tile(&self, n: NodeId) -> &Tile {
        &self.tiles[n.index()]
    }

    /// Mutable tile access.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-mesh node.
    pub fn tile_mut(&mut self, n: NodeId) -> &mut Tile {
        &mut self.tiles[n.index()]
    }

    /// Downcasts a tile's accelerator to a concrete type.
    pub fn accel_as<T: 'static>(&self, n: NodeId) -> Option<&T> {
        self.tiles[n.index()]
            .accel
            .as_ref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutable accelerator downcast.
    pub fn accel_as_mut<T: 'static>(&mut self, n: NodeId) -> Option<&mut T> {
        self.tiles[n.index()]
            .accel
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    // ------------------------------------------------------------------
    // Configuration-plane API.
    // ------------------------------------------------------------------

    /// Installs an accelerator into an empty tile.
    ///
    /// # Errors
    ///
    /// [`SystemError::BadNode`] or [`SystemError::SlotOccupied`].
    pub fn install(
        &mut self,
        node: NodeId,
        accel: Box<dyn Accelerator>,
        app: AppId,
        policy: FaultPolicy,
    ) -> Result<(), SystemError> {
        self.check_node(node)?;
        let tile = &mut self.tiles[node.index()];
        if tile.accel.is_some() {
            return Err(SystemError::SlotOccupied(node));
        }
        tile.accel = Some(accel);
        tile.app = Some(app);
        tile.policy = policy;
        tile.env = CapEnv::new();
        // A fresh accelerator is due immediately; its first wake reports
        // its real schedule.
        tile.wake = Wakeup::AtOrMessage(Cycle::ZERO);
        Ok(())
    }

    /// Grants `from` a SEND capability to `to` and returns the handle.
    ///
    /// Connections across application boundaries require `allow_cross_app`
    /// unless one side is an OS service — the §4.2 rule that distrusting
    /// processes must *specifically establish* IPC.
    ///
    /// # Errors
    ///
    /// [`SystemError::CrossAppConnect`] for implicit cross-app links, plus
    /// node/slot/capability errors.
    pub fn connect(
        &mut self,
        from: NodeId,
        to: NodeId,
        allow_cross_app: bool,
    ) -> Result<CapRef, SystemError> {
        self.connect_badged(from, to, 0, allow_cross_app)
    }

    /// Like [`System::connect`] but stamps a badge into the capability, so
    /// the receiver can attribute traffic to this grant (multi-tenant
    /// services key tenant state off the badge).
    ///
    /// # Errors
    ///
    /// As [`System::connect`].
    pub fn connect_badged(
        &mut self,
        from: NodeId,
        to: NodeId,
        badge: u64,
        allow_cross_app: bool,
    ) -> Result<CapRef, SystemError> {
        self.check_node(from)?;
        self.check_node(to)?;
        let from_app = self.tiles[from.index()]
            .app
            .ok_or(SystemError::SlotEmpty(from))?;
        let to_app = self.tiles[to.index()]
            .app
            .ok_or(SystemError::SlotEmpty(to))?;
        if from_app != to_app && to_app != OS_APP && from_app != OS_APP && !allow_cross_app {
            return Err(SystemError::CrossAppConnect { from, to });
        }
        let cap = self.tiles[from.index()]
            .monitor
            .install_cap(Capability::badged(
                CapKind::Endpoint(EndpointId(to.0 as u32)),
                Rights::SEND,
                badge,
            ))?;
        let now = self.clock.now();
        self.tiles[from.index()].monitor.tracer_mut().record(
            now,
            from.0,
            EventKind::CapOp { op: "connect" },
        );
        Ok(cap)
    }

    /// Connects `from` to `to` and places the capability in `from`'s
    /// environment under `name`.
    ///
    /// # Errors
    ///
    /// As [`System::connect`].
    pub fn connect_env(
        &mut self,
        from: NodeId,
        to: NodeId,
        name: &str,
        allow_cross_app: bool,
    ) -> Result<CapRef, SystemError> {
        let cap = self.connect(from, to, allow_cross_app)?;
        self.tiles[from.index()].env.insert(name, cap);
        Ok(cap)
    }

    /// Places an existing capability into a tile's environment.
    pub fn grant_env(&mut self, node: NodeId, name: &str, cap: CapRef) {
        self.tiles[node.index()].env.insert(name, cap);
    }

    /// Allocates `len` bytes of segment memory for `node`: installs a
    /// READ|WRITE memory capability, wires the tile to the memory service
    /// (env name `"mem-service"`), and opens the reply path.
    ///
    /// # Errors
    ///
    /// Allocation or capability errors.
    pub fn grant_memory(&mut self, node: NodeId, len: u64) -> Result<CapRef, SystemError> {
        self.check_node(node)?;
        let range = self.allocator.alloc(len)?;
        let tile = &mut self.tiles[node.index()];
        let mem_cap = tile.monitor.install_cap(Capability::new(
            CapKind::Memory(range),
            Rights::READ | Rights::WRITE,
        ))?;
        if tile.env.get("mem-service").is_none() {
            let svc = tile.monitor.install_cap(Capability::new(
                CapKind::Endpoint(EndpointId(self.mem_node.0 as u32)),
                Rights::SEND,
            ))?;
            tile.env.insert("mem-service", svc);
        }
        let mem_node = self.mem_node;
        let memtile = &mut self.tiles[mem_node.index()];
        if memtile.monitor.find_endpoint_cap(node).is_none() {
            memtile.monitor.install_cap(Capability::new(
                CapKind::Endpoint(EndpointId(node.0 as u32)),
                Rights::SEND,
            ))?;
        }
        Ok(mem_cap)
    }

    /// Shares a memory segment: derives a (possibly narrowed, rights-
    /// reduced) view of `owner`'s memory capability and installs it at
    /// `peer`, wiring the peer to the memory service too. This is §4.6's
    /// segment sharing — two accelerators exchanging data through a common
    /// buffer without either being able to touch anything else.
    ///
    /// # Errors
    ///
    /// Capability errors (bad handle, not a memory capability, rights not
    /// a subset), node errors.
    pub fn share_memory(
        &mut self,
        owner: NodeId,
        cap: CapRef,
        peer: NodeId,
        rights: Rights,
        narrow: Option<apiary_cap::MemRange>,
    ) -> Result<CapRef, SystemError> {
        self.check_node(owner)?;
        self.check_node(peer)?;
        let capability = *self.tiles[owner.index()]
            .monitor
            .caps()
            .lookup(cap)
            .map_err(SystemError::Cap)?;
        let CapKind::Memory(range) = capability.kind else {
            return Err(SystemError::Cap(CapError::InvalidRef));
        };
        if !rights.is_subset_of(capability.rights) {
            return Err(SystemError::Cap(CapError::IllegalDerivation));
        }
        let shared_range = match narrow {
            Some(r) => {
                if !range.covers(&r) {
                    return Err(SystemError::Cap(CapError::IllegalDerivation));
                }
                r
            }
            None => range,
        };
        let tile = &mut self.tiles[peer.index()];
        let shared = tile
            .monitor
            .install_cap(Capability::new(CapKind::Memory(shared_range), rights))?;
        if tile.env.get("mem-service").is_none() {
            let svc = tile.monitor.install_cap(Capability::new(
                CapKind::Endpoint(EndpointId(self.mem_node.0 as u32)),
                Rights::SEND,
            ))?;
            tile.env.insert("mem-service", svc);
        }
        let mem_node = self.mem_node;
        let memtile = &mut self.tiles[mem_node.index()];
        if memtile.monitor.find_endpoint_cap(peer).is_none() {
            memtile.monitor.install_cap(Capability::new(
                CapKind::Endpoint(EndpointId(peer.0 as u32)),
                Rights::SEND,
            ))?;
        }
        Ok(shared)
    }

    /// Revokes a memory capability and returns its segment to the pool.
    ///
    /// # Errors
    ///
    /// Capability or allocator errors.
    pub fn release_memory(&mut self, node: NodeId, cap: CapRef) -> Result<(), SystemError> {
        self.check_node(node)?;
        let tile = &mut self.tiles[node.index()];
        let capability = *tile.monitor.caps().lookup(cap).map_err(SystemError::Cap)?;
        let CapKind::Memory(range) = capability.kind else {
            return Err(SystemError::Cap(CapError::InvalidRef));
        };
        tile.monitor.revoke_cap(cap)?;
        self.allocator.free(range)?;
        Ok(())
    }

    /// Binds logical service `service` to `target` in `client`'s name
    /// table and grants a SEND capability for it (§4.3 naming).
    ///
    /// # Errors
    ///
    /// Node or capability errors.
    pub fn bind_service(
        &mut self,
        client: NodeId,
        service: ServiceId,
        target: NodeId,
    ) -> Result<CapRef, SystemError> {
        self.check_node(client)?;
        self.check_node(target)?;
        let tile = &mut self.tiles[client.index()];
        tile.monitor.bind_service(service.0, target);
        let cap = tile
            .monitor
            .install_cap(Capability::new(CapKind::Service(service), Rights::SEND))?;
        Ok(cap)
    }

    /// Manually fail-stops a tile (operator action or watchdog).
    pub fn fail_stop(&mut self, node: NodeId) {
        let now = self.clock.now();
        let tile = &mut self.tiles[node.index()];
        tile.monitor.fail_stop(now);
        tile.faults.push(FaultRecord {
            code: 0,
            at: now,
            action: FaultAction::FailStopped,
        });
    }

    /// Injects a fault into a tile exactly as if its accelerator had raised
    /// `code`: the tile's fault policy applies (preempt or fail-stop) and a
    /// [`FaultRecord`] lands in its history. This is the chaos plane's
    /// tile-kill primitive and an operator's big red button.
    pub fn inject_fault(&mut self, node: NodeId, code: u32) {
        let now = self.clock.now();
        self.apply_fault(node, code, now);
    }

    // ------------------------------------------------------------------
    // Supervised services (self-healing, §4.4).
    // ------------------------------------------------------------------

    /// Installs a supervised service: instantiates `factory()` at `node`
    /// and registers the spec so the supervisor can re-instantiate it after
    /// a failure. Requires `supervisor.enabled` in the config to actually
    /// heal; deploying without it just installs.
    ///
    /// # Errors
    ///
    /// As [`System::install`].
    pub fn deploy_service(
        &mut self,
        service: ServiceId,
        node: NodeId,
        app: AppId,
        policy: FaultPolicy,
        bitstream_bytes: u64,
        factory: AccelFactory,
    ) -> Result<(), SystemError> {
        self.install(node, factory(), app, policy)?;
        let next_checkpoint_at = self.first_checkpoint_due();
        self.supervisor.specs.push(ServiceSpec {
            service,
            node,
            app,
            policy,
            bitstream_bytes,
            factory,
            clients: Vec::new(),
            restarts_used: 0,
            abandoned: false,
            next_checkpoint_at,
        });
        Ok(())
    }

    /// When a freshly (re)deployed service's first periodic checkpoint is
    /// due: one interval from now, or never if checkpointing is off.
    fn first_checkpoint_due(&self) -> Cycle {
        let interval = self.cfg.supervisor.checkpoint_interval;
        if interval > 0 {
            self.clock.now() + interval
        } else {
            Cycle::MAX
        }
    }

    /// Registers an already-arriving service with the supervisor *without*
    /// installing anything: the caller is responsible for bringing the
    /// accelerator up at `node` (the destination half of a cross-board
    /// migration, where the instance is restored from a transferred
    /// snapshot and loaded via [`System::reconfigure`]).
    pub fn adopt_service(
        &mut self,
        service: ServiceId,
        node: NodeId,
        app: AppId,
        policy: FaultPolicy,
        bitstream_bytes: u64,
        factory: AccelFactory,
    ) {
        let next_checkpoint_at = self.first_checkpoint_due();
        self.supervisor.specs.push(ServiceSpec {
            service,
            node,
            app,
            policy,
            bitstream_bytes,
            factory,
            clients: Vec::new(),
            restarts_used: 0,
            abandoned: false,
            next_checkpoint_at,
        });
    }

    /// Removes a supervised service from this board: drops its spec and
    /// stored checkpoint, closes any open incident, and decommissions its
    /// tile so no stale authority survives. The source half of a
    /// cross-board migration. Returns the node it was removed from.
    pub fn undeploy_service(&mut self, service: ServiceId) -> Option<NodeId> {
        let idx = self
            .supervisor
            .specs
            .iter()
            .position(|s| s.service == service)?;
        if let Some(ii) = self.supervisor.open_incident(service) {
            self.supervisor.incidents[ii].phase = Phase::Closed;
        }
        let spec = self.supervisor.specs.remove(idx);
        self.supervisor.checkpoints.remove(service.0);
        let now = self.clock.now();
        let tile = &mut self.tiles[spec.node.index()];
        tile.monitor.reset(now);
        tile.monitor.fail_stop(now);
        tile.accel = None;
        tile.app = None;
        tile.env = CapEnv::new();
        Some(spec.node)
    }

    /// The board's checkpoint store (inspection and replication).
    pub fn checkpoint_store(&self) -> &CheckpointStore {
        self.supervisor.checkpoints()
    }

    /// Mutable checkpoint store (the cluster adopts replicated snapshots).
    pub fn checkpoint_store_mut(&mut self) -> &mut CheckpointStore {
        self.supervisor.checkpoints_mut()
    }

    /// Wires `client` to a supervised service: binds the logical name to
    /// the service's current home in the client's name table, grants the
    /// client a SEND capability for it, opens the reply path, and records
    /// the client so recovery re-wires it. Returns the client's service
    /// capability — it stays valid across restarts *and* migrations,
    /// because service naming is late-bound (§4.3).
    ///
    /// # Errors
    ///
    /// Node or capability errors; `SlotEmpty` if the service is unknown.
    pub fn attach_client(
        &mut self,
        client: NodeId,
        service: ServiceId,
    ) -> Result<CapRef, SystemError> {
        let home = self
            .supervisor
            .service_home(service)
            .ok_or(SystemError::BadNode(NodeId(u16::MAX)))?;
        let cap = self.bind_service(client, service, home)?;
        let hometile = &mut self.tiles[home.index()];
        if hometile.monitor.find_endpoint_cap(client).is_none() {
            hometile.monitor.install_cap(Capability::new(
                CapKind::Endpoint(EndpointId(client.0 as u32)),
                Rights::SEND,
            ))?;
        }
        let spec = self
            .supervisor
            .specs
            .iter_mut()
            .find(|s| s.service == service)
            .expect("home lookup succeeded above");
        if !spec.clients.contains(&client) {
            spec.clients.push(client);
        }
        Ok(cap)
    }

    /// The supervisor's incident log (detection/recovery cycles, MTTR).
    pub fn incidents(&self) -> &[Incident] {
        self.supervisor.incidents()
    }

    /// MTTR samples (cycles) for all recovered incidents.
    pub fn mttr_samples(&self) -> Vec<u64> {
        self.supervisor.mttr_samples()
    }

    /// Current home node of a supervised service.
    pub fn service_home(&self, service: ServiceId) -> Option<NodeId> {
        self.supervisor.service_home(service)
    }

    /// Periodic checkpointing: snapshot every healthy preemptible service
    /// whose interval elapsed. The tile stalls for the save leg
    /// ([`checkpoint_downtime`]), so checkpoints are not free — E19
    /// measures the trade. A service whose accelerator cannot externalize
    /// state is permanently excused (`next_checkpoint_at = Cycle::MAX`).
    fn checkpoint_pass(&mut self, sup: &mut Supervisor, now: Cycle) {
        let interval = self.cfg.supervisor.checkpoint_interval;
        if interval == 0 {
            return;
        }
        for spec in &mut sup.specs {
            if spec.abandoned || now < spec.next_checkpoint_at {
                continue;
            }
            let node = spec.node;
            if self.reconfig.in_progress(node) {
                continue;
            }
            let tile = &mut self.tiles[node.index()];
            if tile.monitor.state() != TileState::Running || tile.busy_until > now {
                continue;
            }
            let Some(accel) = tile.accel.as_ref() else {
                continue;
            };
            match accel.save_state() {
                Some(state) => {
                    let len = state.len();
                    tile.busy_until = now + checkpoint_downtime(len);
                    let seq = sup.checkpoints.put(spec.service.0, now, state);
                    tile.monitor.tracer_mut().record(
                        now,
                        node.0,
                        EventKind::Note(format!("checkpoint seq {seq} ({len} B)")),
                    );
                    spec.next_checkpoint_at = now + interval;
                }
                None => {
                    spec.next_checkpoint_at = Cycle::MAX;
                }
            }
        }
    }

    /// One supervisor pass: take due checkpoints, detect fail-stopped
    /// services, escalate through the restart/migrate ladder, and finish
    /// recoveries whose bitstream completed. Runs at the end of every tick
    /// when enabled.
    fn step_supervisor(&mut self, now: Cycle) {
        let mut sup = std::mem::take(&mut self.supervisor);
        self.checkpoint_pass(&mut sup, now);
        for si in 0..sup.specs.len() {
            let service = sup.specs[si].service;
            match sup.open_incident(service) {
                None => {
                    // Detection: the service's home tile fail-stopped. Once
                    // an incident was abandoned the service stays down —
                    // re-detecting it every cycle would flood the log.
                    let node = sup.specs[si].node;
                    if self.tiles[node.index()].monitor.state() != TileState::FailStopped
                        || self.reconfig.in_progress(node)
                        || sup.specs[si].abandoned
                    {
                        continue;
                    }
                    let spec = &sup.specs[si];
                    let code = self.tiles[node.index()].faults.last().map_or(0, |f| f.code);
                    let backoff = self
                        .cfg
                        .supervisor
                        .restart_backoff
                        .saturating_mul(1u64 << spec.restarts_used.min(16));
                    let target = if spec.restarts_used < self.cfg.supervisor.max_restarts {
                        RecoveryTarget::InPlace(node)
                    } else if let Some(spare) = sup.free_spares.pop_front() {
                        RecoveryTarget::Migrate(spare)
                    } else {
                        RecoveryTarget::Abandoned
                    };
                    let phase = if target == RecoveryTarget::Abandoned {
                        sup.specs[si].abandoned = true;
                        Phase::Closed
                    } else {
                        Phase::Backoff {
                            restart_at: now + backoff,
                        }
                    };
                    sup.incidents.push(Incident {
                        service,
                        node,
                        code,
                        detected_at: now,
                        recovered_at: None,
                        target,
                        warm: false,
                        phase,
                    });
                }
                Some(ii) => {
                    let (target, phase) = (sup.incidents[ii].target, sup.incidents[ii].phase);
                    let dst = match target {
                        RecoveryTarget::InPlace(n) | RecoveryTarget::Migrate(n) => n,
                        RecoveryTarget::Abandoned => continue,
                    };
                    match phase {
                        Phase::Backoff { restart_at } if now >= restart_at => {
                            // Warm path: restore the latest verified
                            // checkpoint into the fresh instance before
                            // loading it. The snapshot crosses the ICAP
                            // with the bitstream, so recovery time scales
                            // with state size; a missing or corrupt
                            // snapshot falls back to the cold
                            // factory-fresh path.
                            let warm_state =
                                sup.checkpoints.latest(service.0).map(|s| s.state.clone());
                            let spec = &mut sup.specs[si];
                            let mut accel = (spec.factory)();
                            let mut warm_bytes = 0u64;
                            let warm = match warm_state {
                                Some(state) if accel.restore_state(&state).is_ok() => {
                                    warm_bytes = state.len() as u64;
                                    true
                                }
                                _ => false,
                            };
                            // A busy ICAP just pushes the restart out.
                            match self.reconfigure(
                                dst,
                                accel,
                                spec.app,
                                spec.policy,
                                spec.bitstream_bytes + warm_bytes,
                            ) {
                                Ok(_) => {
                                    spec.restarts_used += 1;
                                    sup.incidents[ii].phase = Phase::Reconfiguring;
                                    sup.incidents[ii].warm = warm;
                                    if warm {
                                        sup.checkpoints.warm_restores += 1;
                                    }
                                }
                                Err(_) => {
                                    // The ICAP is mid-flight on this very
                                    // tile. Rather than silently polling
                                    // every cycle, park the incident until
                                    // the blocking job lands — the exact
                                    // cycle the old retry loop would have
                                    // first succeeded — and leave a span in
                                    // the trace so the stall is visible.
                                    let resume = self
                                        .reconfig
                                        .completion_of(dst)
                                        .unwrap_or_else(|| now.saturating_add(1));
                                    sup.incidents[ii].phase = Phase::Backoff { restart_at: resume };
                                    self.tiles[dst.index()].monitor.tracer_mut().record(
                                        now,
                                        dst.0,
                                        EventKind::Note(format!(
                                            "supervisor restart blocked by reconfig; retry at {resume}"
                                        )),
                                    );
                                }
                            }
                        }
                        Phase::Reconfiguring if !self.reconfig.in_progress(dst) => {
                            // Bitstream done; the tile came back reset this
                            // tick. Rewire clients and close the incident.
                            let spec = &mut sup.specs[si];
                            let old = spec.node;
                            if old != dst {
                                // Decommission the dead tile: wipe every
                                // capability and name binding, then seal it
                                // again so no stale authority survives.
                                let dead = &mut self.tiles[old.index()];
                                dead.monitor.reset(now);
                                dead.monitor.fail_stop(now);
                                dead.accel = None;
                                dead.app = None;
                                dead.env = CapEnv::new();
                            }
                            spec.node = dst;
                            for &c in &spec.clients {
                                self.tiles[c.index()].monitor.bind_service(service.0, dst);
                                let home = &mut self.tiles[dst.index()];
                                if home.monitor.find_endpoint_cap(c).is_none() {
                                    let _ = home.monitor.install_cap(Capability::new(
                                        CapKind::Endpoint(EndpointId(c.0 as u32)),
                                        Rights::SEND,
                                    ));
                                }
                            }
                            sup.incidents[ii].recovered_at = Some(now);
                            sup.incidents[ii].phase = Phase::Closed;
                        }
                        _ => {}
                    }
                }
            }
        }
        self.supervisor = sup;
    }

    /// Manually preempts a tile: saves and immediately restores the
    /// accelerator's state, charging the save/restore downtime. Returns the
    /// snapshot size in bytes.
    ///
    /// # Errors
    ///
    /// [`SystemError::NotPreemptible`] if the accelerator cannot
    /// externalize state.
    pub fn preempt(&mut self, node: NodeId) -> Result<usize, SystemError> {
        self.check_node(node)?;
        let now = self.clock.now();
        let tile = &mut self.tiles[node.index()];
        let accel = tile.accel.as_mut().ok_or(SystemError::SlotEmpty(node))?;
        let Some(snap) = accel.save_state() else {
            return Err(SystemError::NotPreemptible(node));
        };
        accel
            .restore_state(&snap)
            .expect("an accelerator restores its own snapshot");
        let downtime = preemption_downtime(snap.len());
        tile.busy_until = now + downtime;
        tile.monitor
            .tracer_mut()
            .record(now, node.0, EventKind::Preempt { context: 0 });
        Ok(snap.len())
    }

    /// Installs a *second* tenant on an occupied tile, parked: the tile
    /// time-multiplexes between the active and parked tenants via
    /// [`System::swap_context`]. The parked tenant starts cold (no
    /// snapshot yet) and begins running at its first swap-in.
    ///
    /// # Errors
    ///
    /// [`SystemError::SlotEmpty`] if no active tenant is present,
    /// [`SystemError::SlotOccupied`] if a tenant is already parked.
    pub fn install_shared(
        &mut self,
        node: NodeId,
        accel: Box<dyn Accelerator>,
        app: AppId,
        policy: FaultPolicy,
    ) -> Result<(), SystemError> {
        self.check_node(node)?;
        let tile = &mut self.tiles[node.index()];
        if tile.accel.is_none() {
            return Err(SystemError::SlotEmpty(node));
        }
        if tile.parked.is_some() {
            return Err(SystemError::SlotOccupied(node));
        }
        tile.parked = Some(ParkedTenant {
            accel,
            app,
            policy,
            env: CapEnv::new(),
            snapshot: None,
        });
        Ok(())
    }

    /// Swaps the active and parked tenants on a shared tile: saves the
    /// active tenant's architectural state, restores the incoming tenant
    /// from its last swap-out snapshot (or starts it cold), and charges
    /// the partial-reconfig time model for both legs — the tile stalls
    /// for [`preemption_downtime`] of the combined state crossing the
    /// configuration port. Returns `(outgoing, incoming)` snapshot sizes.
    ///
    /// # Errors
    ///
    /// [`SystemError::NoParkedTenant`] without a second tenant,
    /// [`SystemError::NotPreemptible`] if the active tenant cannot
    /// externalize state (the swap does not happen),
    /// [`SystemError::ReconfigInProgress`] mid-bitstream.
    pub fn swap_context(&mut self, node: NodeId) -> Result<(usize, usize), SystemError> {
        self.check_node(node)?;
        if self.reconfig.in_progress(node) {
            return Err(SystemError::ReconfigInProgress(node));
        }
        let now = self.clock.now();
        let tile = &mut self.tiles[node.index()];
        if tile.parked.is_none() {
            return Err(SystemError::NoParkedTenant(node));
        }
        let outgoing_snap = match tile.accel.as_ref().and_then(|a| a.save_state()) {
            Some(s) => s,
            None => return Err(SystemError::NotPreemptible(node)),
        };
        let mut incoming = tile.parked.take().expect("checked above");
        let in_len = match incoming.snapshot.take() {
            Some(snap) => {
                incoming
                    .accel
                    .restore_state(&snap)
                    .expect("a tenant restores its own snapshot");
                snap.len()
            }
            None => 0,
        };
        let out_len = outgoing_snap.len();
        self.finish_swap(node, incoming, outgoing_snap, now, out_len, in_len)
    }

    /// Second half of [`System::swap_context`]: park the outgoing tenant
    /// with its snapshot, seat the incoming one, charge the downtime.
    fn finish_swap(
        &mut self,
        node: NodeId,
        incoming: ParkedTenant,
        outgoing_snap: Vec<u8>,
        now: Cycle,
        out_len: usize,
        in_len: usize,
    ) -> Result<(usize, usize), SystemError> {
        let tile = &mut self.tiles[node.index()];
        let out_accel = tile.accel.take().expect("active tenant was saved");
        let out_app = tile.app;
        let out_policy = tile.policy;
        let out_env = std::mem::replace(&mut tile.env, incoming.env);
        tile.accel = Some(incoming.accel);
        tile.app = Some(incoming.app);
        tile.policy = incoming.policy;
        tile.parked = Some(ParkedTenant {
            accel: out_accel,
            app: out_app.expect("active tenant has an app"),
            policy: out_policy,
            env: out_env,
            snapshot: Some(outgoing_snap),
        });
        tile.busy_until = now + preemption_downtime(out_len + in_len);
        tile.wake = Wakeup::AtOrMessage(Cycle::ZERO);
        tile.monitor
            .tracer_mut()
            .record(now, node.0, EventKind::Preempt { context: 1 });
        Ok((out_len, in_len))
    }

    /// Downcasts a tile's *parked* tenant to a concrete type (retention
    /// audits on the swapped-out tenant).
    pub fn parked_as<T: 'static>(&self, n: NodeId) -> Option<&T> {
        self.tiles[n.index()]
            .parked
            .as_ref()?
            .accel
            .as_any()
            .downcast_ref::<T>()
    }

    /// Begins partial reconfiguration of `node` with a new accelerator.
    /// The tile goes offline immediately (correspondents get errors) and
    /// comes back reset when the bitstream finishes loading. Returns the
    /// completion cycle.
    ///
    /// # Errors
    ///
    /// Node errors or [`SystemError::ReconfigInProgress`].
    pub fn reconfigure(
        &mut self,
        node: NodeId,
        accel: Box<dyn Accelerator>,
        app: AppId,
        policy: FaultPolicy,
        bitstream_bytes: u64,
    ) -> Result<Cycle, SystemError> {
        self.check_node(node)?;
        if self.reconfig.in_progress(node) {
            return Err(SystemError::ReconfigInProgress(node));
        }
        let now = self.clock.now();
        let tile = &mut self.tiles[node.index()];
        tile.accel = None;
        tile.app = None;
        tile.monitor.fail_stop(now);
        Ok(self
            .reconfig
            .start(now, node, accel, app, policy, bitstream_bytes))
    }

    // ------------------------------------------------------------------
    // The cycle loop.
    // ------------------------------------------------------------------

    /// Advances the machine by one cycle (the dense reference clock: every
    /// kernel phase runs every cycle). The event clock in [`System::run`]
    /// reaches the same states by running [`System::cycle_phases`] only on
    /// cycles a component scheduled a wakeup for.
    pub fn tick(&mut self) {
        let now = self.clock.tick();
        self.noc.step();
        self.cycle_phases(now);
    }

    /// Everything a cycle does after the NoC moves its flits: reconfig
    /// completions, inbound pumping, accelerator wakes, watchdogs, outbound
    /// pumping and the supervisor. Both clocks funnel through this, so a
    /// cycle that runs is identical under either; the clocks differ only in
    /// *which* cycles run.
    fn cycle_phases(&mut self, now: Cycle) {
        // Completed reconfigurations come online reset.
        for job in self.reconfig.take_completed(now) {
            let tile = &mut self.tiles[job.node.index()];
            tile.monitor.reset(now);
            tile.accel = Some(job.accel);
            tile.app = Some(job.app);
            tile.policy = job.policy;
            tile.env = CapEnv::new();
            tile.busy_until = now;
            tile.wake = Wakeup::AtOrMessage(Cycle::ZERO);
        }

        // Deliveries into monitors (fail-stopped tiles NACK here). Skip
        // tiles with nothing ejected: pump_in is a no-op for them, and most
        // tiles are quiet most cycles.
        for (i, tile) in self.tiles.iter_mut().enumerate() {
            if self.noc.eject_pending(NodeId(i as u16)) > 0 {
                tile.monitor.pump_in(&mut self.noc, now);
            }
        }

        // Accelerator execution.
        for i in 0..self.tiles.len() {
            let node = NodeId(i as u16);
            if self.reconfig.in_progress(node) {
                continue;
            }
            {
                let tile = &self.tiles[i];
                if tile.accel.is_none()
                    || tile.monitor.state() == TileState::FailStopped
                    || tile.busy_until > now
                {
                    continue;
                }
            }
            let tile = &mut self.tiles[i];
            let mut accel = tile.accel.take().expect("checked above");
            let (wake, raised) = {
                let mut os = KernelOs::new(&mut tile.monitor, &tile.env, now);
                let wake = accel.wake(now, &mut os);
                (wake, os.raised)
            };
            tile.accel = Some(accel);
            tile.wake = wake;
            if let Some(&code) = raised.first() {
                self.apply_fault(node, code, now);
            }
        }

        // Watchdog: tiles sitting on unconsumed traffic beyond their
        // window are treated as hung (§4.4) and get the fault policy.
        for i in 0..self.tiles.len() {
            if self.tiles[i].monitor.hang_detected(now) {
                self.apply_fault(NodeId(i as u16), crate::fault::WATCHDOG_FAULT, now);
            }
        }

        // Outbound traffic into the NoC; empty outboxes have nothing to do.
        for tile in &mut self.tiles {
            if tile.monitor.outbox_len() > 0 {
                tile.monitor.pump_out(&mut self.noc, now);
            }
        }

        // Self-healing: detect fail-stopped services and drive recovery.
        if self.cfg.supervisor.enabled {
            self.step_supervisor(now);
        }
    }

    /// The next cycle, no later than `horizon`, at which the kernel phases
    /// could do something a skipped cycle would not: a reconfiguration
    /// completes, an outbox head becomes ready, a watchdog window expires,
    /// an accelerator's scheduled wakeup (or a message already waiting for
    /// an `OnMessage` sleeper) comes due, or the supervisor has a detection
    /// or backoff expiry pending. Undelivered NoC traffic is handled by the
    /// caller, which steps the NoC densely while anything is in flight.
    fn next_phase_due(&self, now: Cycle, horizon: Cycle) -> Cycle {
        let next = now.saturating_add(1);
        if self.noc.rx_pending_total() > 0 {
            return next;
        }
        let mut due = horizon;
        if let Some(t) = self.reconfig.next_completion() {
            due = due.min(t.max(next));
        }
        for tile in &self.tiles {
            if let Some(ready) = tile.monitor.outbox_next_ready() {
                due = due.min(ready.max(next));
            }
            if let Some(t) = tile.monitor.hang_deadline() {
                due = due.min(t.max(next));
            }
            if tile.accel.is_some() && tile.monitor.state() != TileState::FailStopped {
                let deadline = if tile.wake.wakes_on_message() && tile.monitor.inbox_len() > 0 {
                    // The message it was sleeping on is already here.
                    next
                } else {
                    tile.wake.deadline()
                };
                if deadline != Cycle::MAX {
                    due = due.min(deadline.max(tile.busy_until).max(next));
                }
            }
        }
        if self.cfg.supervisor.enabled {
            due = due.min(self.supervisor_due(next));
        }
        due.max(next)
    }

    /// The supervisor's contribution to [`System::next_phase_due`]: `next`
    /// if a fail-stop is waiting to be detected, else the earliest backoff
    /// expiry or periodic-checkpoint deadline. Reconfiguring incidents
    /// close on the bitstream completion cycle, which the reconfig
    /// deadline already covers. A due-but-blocked checkpoint (tile busy)
    /// re-arms at `busy_until` — the first cycle the dense clock's
    /// every-cycle retry would have succeeded.
    fn supervisor_due(&self, next: Cycle) -> Cycle {
        let mut due = Cycle::MAX;
        for spec in &self.supervisor.specs {
            match self.supervisor.open_incident(spec.service) {
                None => {
                    let node = spec.node;
                    if spec.abandoned {
                        continue;
                    }
                    let tile = &self.tiles[node.index()];
                    if tile.monitor.state() == TileState::FailStopped
                        && !self.reconfig.in_progress(node)
                    {
                        return next;
                    }
                    if spec.next_checkpoint_at != Cycle::MAX
                        && tile.monitor.state() == TileState::Running
                        && !self.reconfig.in_progress(node)
                    {
                        due = due.min(spec.next_checkpoint_at.max(tile.busy_until).max(next));
                    }
                }
                Some(ii) => {
                    if let Phase::Backoff { restart_at } = self.supervisor.incidents[ii].phase {
                        due = due.min(restart_at.max(next));
                    }
                }
            }
        }
        due
    }

    /// One event-clock step: advance to the next cycle where the kernel
    /// phases can matter — stepping the NoC cycle-by-cycle while traffic is
    /// in flight (a delivery re-arms every `OnMessage` sleeper, so phases
    /// run the cycle it lands), jumping the clock outright when the
    /// interconnect is provably idle — then run the phases for that cycle.
    /// Always advances at least one cycle and never beyond `horizon`.
    fn event_step(&mut self, horizon: Cycle) {
        let due = self.next_phase_due(self.clock.now(), horizon);
        let now = loop {
            if self.noc.pending() == 0 && self.noc.rx_pending_total() == 0 {
                self.noc.skip_idle_to(due);
                self.clock.advance_to(due);
                break due;
            }
            let now = self.clock.tick();
            self.noc.step();
            if now >= due || self.noc.rx_pending_total() > 0 {
                break now;
            }
        };
        self.cycle_phases(now);
    }

    /// The next cycle, no later than `horizon`, at which this system can do
    /// anything on its own: `now + 1` while NoC traffic is in flight or
    /// undrained, else the earliest kernel-phase deadline. Lockstep drivers
    /// that advance several systems against one shared clock (the cluster)
    /// use this to find the global next event; every cycle strictly before
    /// the returned one is provably a no-op for this system.
    pub fn next_event_due(&self, horizon: Cycle) -> Cycle {
        let now = self.clock.now();
        if self.noc.pending() > 0 {
            return now.saturating_add(1);
        }
        self.next_phase_due(now, horizon)
    }

    /// Jumps the clock to `target` without running any kernel phases. Only
    /// sound when every cycle in `(now, target]` is a no-op — i.e. `target`
    /// is strictly before what [`System::next_event_due`] reported (the NoC
    /// must be empty, which that contract guarantees). The idle NoC still
    /// accounts the skipped cycles and steps its chaos plane through them.
    pub fn skip_to(&mut self, target: Cycle) {
        debug_assert_eq!(self.noc.pending(), 0, "cannot skip over in-flight traffic");
        self.noc.skip_idle_to(target);
        self.clock.advance_to(target);
    }

    /// Runs for `cycles` cycles. Under [`ClockMode::Event`] the clock jumps
    /// between scheduled wakeups; under [`ClockMode::Dense`] every cycle is
    /// ticked. Both end at exactly the same time with bit-identical state.
    pub fn run(&mut self, cycles: u64) {
        let end = self.clock.now().saturating_add(cycles);
        if clock_mode() == ClockMode::Dense {
            while self.clock.now() < end {
                self.tick();
            }
            return;
        }
        while self.clock.now() < end {
            self.event_step(end);
        }
    }

    /// Advances time by one scheduling step: one cycle under the dense
    /// clock, or up to the next scheduled wakeup (never beyond `horizon`)
    /// under the event clock. Harness components attached directly to
    /// monitors — load generators, experiment drivers — use this to
    /// interleave their own wakeups with the kernel's event loop: compute
    /// your next deadline, `advance_toward` it in a loop, and check your
    /// tiles for mail after each step.
    pub fn advance_toward(&mut self, horizon: Cycle) {
        if self.clock.now() >= horizon {
            return;
        }
        if clock_mode() == ClockMode::Dense {
            self.tick();
        } else {
            self.event_step(horizon);
        }
    }

    /// Runs until `pred` returns `true` or `max_cycles` elapse; returns
    /// whether the predicate fired. Under the dense clock the predicate is
    /// checked after every cycle; under the event clock it is checked after
    /// every cycle whose kernel phases ran. The two stop on exactly the
    /// same cycle provided `pred` is a function of component state (which
    /// only changes on phase cycles), not of raw clock time.
    pub fn run_until(&mut self, max_cycles: u64, mut pred: impl FnMut(&System) -> bool) -> bool {
        let end = self.clock.now().saturating_add(max_cycles);
        if clock_mode() == ClockMode::Dense {
            while self.clock.now() < end {
                self.tick();
                if pred(self) {
                    return true;
                }
            }
            return false;
        }
        while self.clock.now() < end {
            self.event_step(end);
            if pred(self) {
                return true;
            }
        }
        false
    }

    /// Runs until no traffic has been in flight for a settle window (long
    /// enough to cover in-progress accelerator compute), or until
    /// `max_cycles` elapse; returns `true` on quiescence.
    ///
    /// "Idle" means the NoC and all outbound queues are empty. Messages
    /// already delivered into inboxes do not count: an undriven tile (e.g.
    /// a test client) may leave responses unread indefinitely.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> bool {
        const SETTLE: u64 = 4096;
        let end = self.clock.now().saturating_add(max_cycles);
        if clock_mode() == ClockMode::Dense {
            let mut quiet = 0u64;
            for _ in 0..max_cycles {
                self.tick();
                if self.is_idle() {
                    quiet += 1;
                    if quiet >= SETTLE {
                        return true;
                    }
                } else {
                    quiet = 0;
                }
            }
            return self.is_idle();
        }
        // Event clock: the idle streak only breaks on cycles the phases
        // run, so count the skipped cycles in bulk. The settle window ends
        // at exactly the cycle dense ticking would have stopped on.
        let mut quiet = 0u64;
        while self.clock.now() < end {
            let now = self.clock.now();
            let due = self.next_phase_due(now, end);
            if self.is_idle() {
                let finish = now.saturating_add(SETTLE.saturating_sub(quiet));
                if finish < due {
                    self.noc.skip_idle_to(finish);
                    self.clock.advance_to(finish);
                    return true;
                }
                quiet += due.saturating_since(now).saturating_sub(1);
                self.noc.skip_idle_to(due);
                self.clock.advance_to(due);
                self.cycle_phases(due);
            } else {
                quiet = 0;
                self.event_step(end);
            }
            if self.is_idle() {
                quiet += 1;
                if quiet >= SETTLE {
                    return true;
                }
            } else {
                quiet = 0;
            }
        }
        self.is_idle()
    }

    /// Returns `true` when no traffic is in flight (see
    /// [`System::run_until_idle`] for the caveat about compute in
    /// progress).
    pub fn is_idle(&self) -> bool {
        self.noc.pending() == 0 && self.tiles.iter().all(|t| t.monitor.outbox_len() == 0)
    }

    fn apply_fault(&mut self, node: NodeId, code: u32, now: Cycle) {
        let tile = &mut self.tiles[node.index()];
        let preemptible = tile.accel.as_ref().is_some_and(|a| a.is_preemptible());
        let action = if tile.policy == FaultPolicy::Preempt && preemptible {
            let accel = tile.accel.as_mut().expect("present if preemptible");
            let snap = accel.save_state().expect("preemptible accelerators save");
            accel
                .restore_state(&snap)
                .expect("an accelerator restores its own snapshot");
            let downtime = preemption_downtime(snap.len());
            tile.busy_until = now + downtime;
            tile.monitor
                .tracer_mut()
                .record(now, node.0, EventKind::Preempt { context: 0 });
            FaultAction::Preempted { downtime }
        } else {
            tile.monitor.fail_stop(now);
            FaultAction::FailStopped
        };
        tile.faults.push(FaultRecord {
            code,
            at: now,
            action,
        });
    }

    // ------------------------------------------------------------------
    // Introspection (Figure 1 rendering and debugging).
    // ------------------------------------------------------------------

    /// Collects every tile's trace events into one time-sorted stream —
    /// system-wide `strace` for the message layer (§3's debugging goal).
    /// Tiles must have been configured with a nonzero `trace_depth` to
    /// contribute ring events; counter-only monitors contribute nothing.
    pub fn merged_trace(&self) -> Vec<apiary_trace::Event> {
        let mut events: Vec<apiary_trace::Event> = self
            .tiles
            .iter()
            .flat_map(|t| t.monitor.tracer().events().cloned())
            .collect();
        events.sort_by_key(|e| (e.at, e.tile));
        events
    }

    /// Renders the tile map as ASCII art — the textual reproduction of the
    /// paper's Figure 1 for an arbitrary configuration.
    pub fn render_map(&self) -> String {
        use core::fmt::Write;
        let mesh = self.noc.mesh();
        let mut out = String::new();
        const W: usize = 20;
        for y in (0..mesh.height).rev() {
            let mut row_top = String::new();
            let mut row_mid = String::new();
            let mut row_bot = String::new();
            for x in 0..mesh.width {
                let n = mesh.node(apiary_noc::Coord::new(x, y));
                let tile = &self.tiles[n.index()];
                let app = tile
                    .app
                    .map(|a| format!("{a}"))
                    .unwrap_or_else(|| "free".to_string());
                let state = match tile.monitor.state() {
                    TileState::Running => "",
                    TileState::FailStopped => "!",
                };
                let name: String = tile.accel_name().chars().take(W - 4).collect();
                row_top.push_str(&format!("+{:-<w$}", "", w = W - 1));
                row_mid.push_str(&format!("|{:<w$}", format!("{n}{state} {name}"), w = W - 1));
                row_bot.push_str(&format!("|{:<w$}", format!("  {app} [mon+rtr]"), w = W - 1));
            }
            let _ = writeln!(out, "{row_top}+");
            let _ = writeln!(out, "{row_mid}|");
            let _ = writeln!(out, "{row_bot}|");
        }
        let _ = writeln!(
            out,
            "{}+",
            format!("+{:-<w$}", "", w = W - 1).repeat(mesh.width as usize)
        );
        out
    }
}
