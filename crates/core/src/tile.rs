//! A tile: monitor + accelerator slot + kernel bookkeeping, and the
//! kernel's implementation of the [`TileOs`] interface.

use crate::fault::{FaultPolicy, FaultRecord};
use crate::process::AppId;
use apiary_accel::{Accelerator, CapEnv, TileOs};
use apiary_cap::CapRef;
use apiary_mem::AccessKind;
use apiary_monitor::{Monitor, SendError};
use apiary_noc::{Delivered, TrafficClass};
use apiary_sim::{Cycle, Payload, Wakeup};
use apiary_trace::EventKind;

/// A swapped-out tenant on a time-multiplexed tile (§4.4 preemptive
/// sharing): its accelerator instance, identity, capability environment,
/// and the architectural-state snapshot taken when it was swapped out
/// (`None` until its first swap-in — it starts cold).
pub struct ParkedTenant {
    /// The swapped-out accelerator instance.
    pub accel: Box<dyn Accelerator>,
    /// Owning application.
    pub app: AppId,
    /// Fault policy to apply while this tenant is active.
    pub policy: FaultPolicy,
    /// Capability environment restored on swap-in.
    pub env: CapEnv,
    /// State saved at swap-out; restored on the next swap-in.
    pub snapshot: Option<Vec<u8>>,
}

/// One mesh tile.
pub struct Tile {
    /// The trusted monitor fronting this tile.
    pub monitor: Monitor,
    /// The accelerator occupying the dynamic region, if any.
    pub accel: Option<Box<dyn Accelerator>>,
    /// The capability environment granted to the accelerator.
    pub env: CapEnv,
    /// Which application owns this tile (None = empty slot).
    pub app: Option<AppId>,
    /// Fault policy.
    pub policy: FaultPolicy,
    /// The tile is paused (preemption save/restore in progress) until this
    /// cycle.
    pub busy_until: Cycle,
    /// The accelerator's last reported wakeup — when the event clock next
    /// owes this tile a run. Dense ticking stores but ignores it. Kernel
    /// lifecycle changes (install, reconfiguration completion) reset it to
    /// "due now", which is always safe: a spurious wake is a no-op.
    pub wake: Wakeup,
    /// Fault history.
    pub faults: Vec<FaultRecord>,
    /// The swapped-out second tenant, when the tile is time-multiplexed
    /// (see [`crate::System::install_shared`]).
    pub parked: Option<ParkedTenant>,
}

impl Tile {
    /// Creates an empty tile around a monitor.
    pub fn new(monitor: Monitor) -> Tile {
        Tile {
            monitor,
            accel: None,
            env: CapEnv::new(),
            app: None,
            policy: FaultPolicy::default(),
            busy_until: Cycle::ZERO,
            wake: Wakeup::AtOrMessage(Cycle::ZERO),
            faults: Vec::new(),
            parked: None,
        }
    }

    /// The accelerator's name, or `"-"` for an empty slot.
    pub fn accel_name(&self) -> &'static str {
        self.accel.as_ref().map_or("-", |a| a.name())
    }
}

/// The kernel's [`TileOs`] implementation: a per-tick view that routes every
/// accelerator action through the tile's monitor.
pub struct KernelOs<'a> {
    monitor: &'a mut Monitor,
    env: &'a CapEnv,
    now: Cycle,
    /// Faults raised during this tick (applied by the system afterwards).
    pub raised: Vec<u32>,
}

impl<'a> KernelOs<'a> {
    /// Builds the per-tick OS view.
    pub fn new(monitor: &'a mut Monitor, env: &'a CapEnv, now: Cycle) -> KernelOs<'a> {
        KernelOs {
            monitor,
            env,
            now,
            raised: Vec::new(),
        }
    }
}

impl TileOs for KernelOs<'_> {
    fn now(&self) -> Cycle {
        self.now
    }

    fn recv(&mut self) -> Option<Delivered> {
        self.monitor.recv()
    }

    fn inbox_depth(&self) -> usize {
        self.monitor.inbox_len()
    }

    fn send(
        &mut self,
        cap: CapRef,
        kind: u16,
        tag: u64,
        class: TrafficClass,
        payload: Payload,
    ) -> Result<(), SendError> {
        self.monitor.send(cap, kind, tag, class, payload, self.now)
    }

    fn reply(
        &mut self,
        to: &Delivered,
        kind: u16,
        class: TrafficClass,
        payload: Payload,
    ) -> Result<(), SendError> {
        let cap = self
            .monitor
            .find_endpoint_cap(to.msg.src)
            .ok_or(SendError::Cap(apiary_cap::CapError::InvalidRef))?;
        self.monitor
            .send(cap, kind, to.msg.tag, class, payload, self.now)
    }

    fn mem_read(
        &mut self,
        mem_cap: CapRef,
        offset: u64,
        len: u64,
        tag: u64,
    ) -> Result<(), SendError> {
        let svc = self
            .env
            .get("mem-service")
            .ok_or(SendError::UnknownService)?;
        self.monitor.send_mem(
            mem_cap,
            svc,
            AccessKind::Read,
            offset,
            len,
            &[],
            tag,
            self.now,
        )
    }

    fn mem_write(
        &mut self,
        mem_cap: CapRef,
        offset: u64,
        data: &[u8],
        tag: u64,
    ) -> Result<(), SendError> {
        let svc = self
            .env
            .get("mem-service")
            .ok_or(SendError::UnknownService)?;
        self.monitor.send_mem(
            mem_cap,
            svc,
            AccessKind::Write,
            offset,
            data.len() as u64,
            data,
            tag,
            self.now,
        )
    }

    fn cap_env(&self) -> &CapEnv {
        self.env
    }

    fn note(&mut self, text: &str) {
        let node = self.monitor.node().0;
        self.monitor
            .tracer_mut()
            .record(self.now, node, EventKind::Note(text.to_string()));
    }

    fn raise_fault(&mut self, code: u32) {
        let node = self.monitor.node().0;
        self.monitor
            .tracer_mut()
            .record(self.now, node, EventKind::Fault { code });
        self.raised.push(code);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apiary_cap::{CapKind, Capability, EndpointId, Rights};
    use apiary_monitor::MonitorConfig;
    use apiary_noc::NodeId;

    fn tile(node: u16) -> Tile {
        Tile::new(Monitor::new(NodeId(node), MonitorConfig::default()))
    }

    #[test]
    fn empty_tile_basics() {
        let t = tile(3);
        assert_eq!(t.accel_name(), "-");
        assert!(t.app.is_none());
        assert_eq!(t.policy, FaultPolicy::FailStop);
    }

    #[test]
    fn kernel_os_reply_requires_endpoint_cap() {
        let mut t = tile(0);
        let env = CapEnv::new();
        let mut os = KernelOs::new(&mut t.monitor, &env, Cycle(1));
        let mut msg = apiary_noc::Message::new(NodeId(5), NodeId(0), TrafficClass::Request, vec![]);
        msg.kind = apiary_monitor::wire::KIND_REQUEST;
        let d = Delivered {
            msg,
            injected_at: Cycle(0),
            delivered_at: Cycle(1),
        };
        // No cap for node 5: reply denied.
        assert!(os
            .reply(
                &d,
                apiary_monitor::wire::KIND_RESPONSE,
                TrafficClass::Request,
                Payload::empty()
            )
            .is_err());
        drop(os);
        // Grant the cap; reply now works.
        t.monitor
            .install_cap(Capability::new(
                CapKind::Endpoint(EndpointId(5)),
                Rights::SEND,
            ))
            .expect("space");
        let mut os = KernelOs::new(&mut t.monitor, &env, Cycle(2));
        os.reply(
            &d,
            apiary_monitor::wire::KIND_RESPONSE,
            TrafficClass::Request,
            Payload::empty(),
        )
        .expect("granted");
    }

    #[test]
    fn kernel_os_mem_needs_service_cap_in_env() {
        let mut t = tile(0);
        let env = CapEnv::new();
        let mem_cap = CapRef {
            index: 0,
            generation: 0,
        };
        let mut os = KernelOs::new(&mut t.monitor, &env, Cycle(0));
        assert_eq!(
            os.mem_read(mem_cap, 0, 8, 1),
            Err(SendError::UnknownService)
        );
    }

    #[test]
    fn raise_fault_records() {
        let mut t = tile(2);
        let env = CapEnv::new();
        let mut os = KernelOs::new(&mut t.monitor, &env, Cycle(9));
        os.raise_fault(77);
        assert_eq!(os.raised, vec![77]);
        assert_eq!(t.monitor.tracer().count(&EventKind::Fault { code: 0 }), 1);
    }
}
