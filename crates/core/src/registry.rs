//! The service registry tile (§4.3).
//!
//! Service naming in Apiary is an API-layer concern: capabilities name
//! logical [`ServiceId`]s and each monitor's name table resolves them to
//! physical nodes. The kernel seeds those tables, but discovering *which*
//! service id a human-readable name maps to is itself a service — this
//! tile. Accelerators send [`wire::KIND_LOOKUP`] requests carrying a name
//! string and receive the `(service id, node)` binding, which they can use
//! when asking the kernel (via their management interface) for a service
//! capability.
//!
//! Request payload: the UTF-8 service name.
//! Reply payload: `[found: u8][service_id: u32][node: u16]`.

use apiary_accel::{Accelerator, TileOs};
use apiary_cap::ServiceId;
use apiary_monitor::wire;
use apiary_noc::{NodeId, TrafficClass};
use apiary_sim::{Cycle, Wakeup};
use std::collections::BTreeMap;

/// The registry accelerator.
#[derive(Debug, Default)]
pub struct RegistryService {
    entries: BTreeMap<String, (ServiceId, NodeId)>,
    /// Lookups served.
    pub lookups: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl RegistryService {
    /// Creates an empty registry.
    pub fn new() -> RegistryService {
        RegistryService::default()
    }

    /// Publishes a binding (kernel/management plane). Returns the binding
    /// this publish displaced, if the name was already taken — silently
    /// overwriting a live service's name is how split-brain directories
    /// start, so callers get to notice and withdraw-then-republish instead.
    ///
    /// Flow-cache contract: the registry only maps *names* to service ids;
    /// it never changes where a monitor's service table points. Rebinding a
    /// service to a new node goes through [`crate::System::bind_service`],
    /// which calls `Monitor::bind_service` on the client tile — and that
    /// call invalidates the monitor's flow-verdict cache, so a cached
    /// (capability, destination) verdict can never outlive a rebind.
    pub fn publish(
        &mut self,
        name: &str,
        service: ServiceId,
        node: NodeId,
    ) -> Option<(ServiceId, NodeId)> {
        self.entries.insert(name.to_string(), (service, node))
    }

    /// Removes a binding; returns whether it existed.
    pub fn withdraw(&mut self, name: &str) -> bool {
        self.entries.remove(name).is_some()
    }

    /// Looks up a binding by name (kernel/management plane; accelerators use
    /// [`wire::KIND_LOOKUP`] messages instead).
    pub fn lookup(&self, name: &str) -> Option<(ServiceId, NodeId)> {
        self.entries.get(name).copied()
    }

    /// Number of published bindings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing is published.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Encodes a reply payload.
    fn encode_reply(entry: Option<&(ServiceId, NodeId)>) -> Vec<u8> {
        match entry {
            Some((sid, node)) => {
                let mut p = vec![1u8];
                p.extend_from_slice(&sid.0.to_le_bytes());
                p.extend_from_slice(&node.0.to_le_bytes());
                p
            }
            None => vec![0u8],
        }
    }
}

/// Decodes a registry reply into `Some((service, node))` or `None` for a
/// miss; `None` is also returned for malformed payloads.
pub fn decode_lookup_reply(payload: &[u8]) -> Option<Option<(ServiceId, NodeId)>> {
    match payload.first()? {
        0 => Some(None),
        1 => {
            if payload.len() != 7 {
                return None;
            }
            let sid = u32::from_le_bytes(payload[1..5].try_into().ok()?);
            let node = u16::from_le_bytes(payload[5..7].try_into().ok()?);
            Some(Some((ServiceId(sid), NodeId(node))))
        }
        _ => None,
    }
}

impl Accelerator for RegistryService {
    fn name(&self) -> &'static str {
        "registry"
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }

    fn wake(&mut self, _now: Cycle, os: &mut dyn TileOs) -> Wakeup {
        while let Some(req) = os.recv() {
            if req.msg.kind != wire::KIND_LOOKUP {
                continue;
            }
            self.lookups += 1;
            let name = String::from_utf8_lossy(&req.msg.payload);
            let entry = self.entries.get(name.as_ref());
            if entry.is_none() {
                self.misses += 1;
            }
            let _ = os.reply(
                &req,
                wire::KIND_LOOKUP_REPLY,
                TrafficClass::Control,
                Self::encode_reply(entry).into(),
            );
        }
        // Purely reactive: nothing to do until the next lookup arrives.
        Wakeup::OnMessage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apiary_accel::os::test_os::MockOs;
    use apiary_noc::{Delivered, Message};
    use apiary_sim::Cycle;

    fn lookup(name: &str) -> Delivered {
        let mut msg = Message::new(
            NodeId(1),
            NodeId(0),
            TrafficClass::Control,
            name.as_bytes().to_vec(),
        );
        msg.kind = wire::KIND_LOOKUP;
        Delivered {
            msg,
            injected_at: Cycle(0),
            delivered_at: Cycle(0),
        }
    }

    #[test]
    fn hit_and_miss() {
        let mut os = MockOs::new();
        let mut r = RegistryService::new();
        assert_eq!(r.publish("kv", ServiceId(7), NodeId(9)), None);
        os.deliver(lookup("kv"));
        os.deliver(lookup("nonesuch"));
        r.wake(os.now(), &mut os);
        assert_eq!(r.lookups, 2);
        assert_eq!(r.misses, 1);
        assert_eq!(
            decode_lookup_reply(&os.sent[0].3),
            Some(Some((ServiceId(7), NodeId(9))))
        );
        assert_eq!(decode_lookup_reply(&os.sent[1].3), Some(None));
    }

    #[test]
    fn withdraw_removes() {
        let mut r = RegistryService::new();
        assert_eq!(r.publish("x", ServiceId(1), NodeId(2)), None);
        assert!(r.withdraw("x"));
        assert!(!r.withdraw("x"));
        assert!(r.is_empty());
    }

    #[test]
    fn non_lookup_traffic_ignored() {
        let mut os = MockOs::new();
        let mut r = RegistryService::new();
        let mut d = lookup("kv");
        d.msg.kind = wire::KIND_REQUEST;
        os.deliver(d);
        r.wake(os.now(), &mut os);
        assert_eq!(r.lookups, 0);
        assert!(os.sent.is_empty());
    }

    #[test]
    fn malformed_replies_rejected_by_decoder() {
        assert_eq!(decode_lookup_reply(&[]), None);
        assert_eq!(decode_lookup_reply(&[1, 2, 3]), None);
        assert_eq!(decode_lookup_reply(&[9]), None);
        assert_eq!(decode_lookup_reply(&[0]), Some(None));
    }
}

#[cfg(test)]
mod lookup_tests {
    use super::*;

    #[test]
    fn lookup_returns_published_binding() {
        let mut r = RegistryService::new();
        assert_eq!(r.lookup("kv"), None);
        assert_eq!(r.publish("kv", ServiceId(7), NodeId(9)), None);
        assert_eq!(r.lookup("kv"), Some((ServiceId(7), NodeId(9))));
        assert_eq!(r.lookup("video"), None);
    }

    #[test]
    fn republish_returns_the_displaced_binding() {
        let mut r = RegistryService::new();
        assert_eq!(r.publish("kv", ServiceId(7), NodeId(9)), None);
        // Rebinding the same name reports what it displaced, so a kernel
        // moving a service can detect an unexpected squatter.
        assert_eq!(
            r.publish("kv", ServiceId(7), NodeId(12)),
            Some((ServiceId(7), NodeId(9)))
        );
        assert_eq!(r.lookup("kv"), Some((ServiceId(7), NodeId(12))));
        assert_eq!(r.len(), 1, "rebinding does not duplicate the entry");
    }

    #[test]
    fn lookup_after_withdraw_misses() {
        let mut r = RegistryService::new();
        assert_eq!(r.publish("kv", ServiceId(7), NodeId(9)), None);
        assert!(r.withdraw("kv"));
        assert_eq!(r.lookup("kv"), None);
        // Republish after withdraw displaces nothing.
        assert_eq!(r.publish("kv", ServiceId(8), NodeId(10)), None);
        assert_eq!(r.lookup("kv"), Some((ServiceId(8), NodeId(10))));
    }
}
