//! Fault-handling policy (§4.4).

use core::fmt;

/// What the kernel does when a tile's accelerator raises a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Fail-stop: the monitor drains the tile's traffic and answers all
    /// further messages with errors. The whole tile is lost until
    /// reconfigured. This is the best achievable model for accelerators
    /// that are only *concurrent* (cannot externalize their state).
    #[default]
    FailStop,
    /// Context swap: if the accelerator is preemptible (externalizes
    /// state), the kernel saves its state, clears the faulted execution,
    /// and restores — other contexts on the tile keep their data and
    /// continue. Falls back to fail-stop for non-preemptible accelerators.
    Preempt,
}

impl fmt::Display for FaultPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPolicy::FailStop => write!(f, "fail-stop"),
            FaultPolicy::Preempt => write!(f, "preempt"),
        }
    }
}

/// A fault record, for post-mortem queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Accelerator-supplied fault code.
    pub code: u32,
    /// The cycle the fault was raised.
    pub at: apiary_sim::Cycle,
    /// What the kernel did about it.
    pub action: FaultAction,
}

/// The action the kernel actually took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Tile fail-stopped.
    FailStopped,
    /// Context swapped; tile resumed after the recorded downtime.
    Preempted {
        /// Cycles the tile was paused for save/restore.
        downtime: u64,
    },
}

/// The fault code the kernel assigns to watchdog-detected hangs (the
/// accelerator never raised a fault; the monitor caught it not consuming
/// traffic).
pub const WATCHDOG_FAULT: u32 = 0xDEAD_0001;

/// Cycles to save + restore `state_bytes` of context over the tile's
/// configuration port, modelled at 8 bytes/cycle plus fixed sequencing
/// overhead — the cost SYNERGY-style state capture pays.
pub fn preemption_downtime(state_bytes: usize) -> u64 {
    64 + (state_bytes as u64).div_ceil(8) * 2
}

/// Cycles to *save* `state_bytes` of context (half the preemption
/// round-trip: no restore leg). This is what a periodic checkpoint costs
/// the running service — the tile stalls while the configuration port
/// drains its state.
pub fn checkpoint_downtime(state_bytes: usize) -> u64 {
    32 + (state_bytes as u64).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fail_stop() {
        assert_eq!(FaultPolicy::default(), FaultPolicy::FailStop);
    }

    #[test]
    fn downtime_scales_with_state() {
        assert!(preemption_downtime(0) >= 64);
        assert!(preemption_downtime(1 << 20) > preemption_downtime(1 << 10));
        // 8 bytes: one beat saved, one restored.
        assert_eq!(preemption_downtime(8), 64 + 2);
    }

    #[test]
    fn checkpoint_is_the_save_leg() {
        assert_eq!(checkpoint_downtime(8), 32 + 1);
        assert!(checkpoint_downtime(1 << 16) < preemption_downtime(1 << 16));
    }
}
