//! Apiary scale-out: a multi-board fabric (§1's network-attached premise
//! taken past a single card).
//!
//! One board is a full [`apiary_core::System`] — NoC, monitors, kernel,
//! services. This crate joins N of them into one deterministic simulation:
//!
//! - [`fabric`] — the inter-board network, built from the same
//!   [`apiary_net`] primitives the single-board network service uses:
//!   [`apiary_net::Wire`] for serialisation + propagation and go-back-N ARQ
//!   for reliability, arranged as a star through a top-of-rack switch or as
//!   a direct full mesh, with cut/restore hooks for the chaos plane,
//! - [`directory`] — the global service directory: each board's registry
//!   grows node scoping, versioned lease-based entries, and anti-entropy
//!   gossip, so every board eventually knows every replica of every named
//!   service without any central coordinator,
//! - [`balancer`] — replica selection by power-of-two-choices over
//!   per-replica in-flight counts, the cheapest policy that still avoids
//!   herding onto a dead or slow board,
//! - [`cluster`] — [`cluster::ClusterSystem`]: the boards, the fabric, the
//!   directory plumbing, and remote capability invocation — a
//!   [`apiary_cap::CapKind::Remote`] capability held at a board's gateway
//!   tile is forwarded by the kernel's egress proxy onto the fabric, with
//!   the client-side retry/backoff and circuit breaker of
//!   [`apiary_net::RequestGen`] applying end-to-end.
//!
//! Everything is seeded and ticked in board order: the same configuration
//! and seed replay byte-identically regardless of host parallelism, which
//! experiment E17 checks.

pub mod balancer;
pub mod cluster;
pub mod directory;
pub mod fabric;

pub use balancer::Balancer;
pub use cluster::{
    drive_clients, run_clients, ClusterClient, ClusterConfig, ClusterSystem, Completion,
    MigrationOutcome, SubmitError,
};
pub use directory::{DirEntry, Directory};
pub use fabric::{Body, ClusterMsg, Fabric, FabricConfig, LinkConfig, Topology};
