//! The inter-board fabric.
//!
//! Boards are joined by the same primitives the single-board network
//! service already trusts: [`Wire`] models each link's serialisation
//! bandwidth and propagation delay (plus optional seeded loss), and the
//! go-back-N ARQ from [`apiary_net::arq`] makes every link reliable — the
//! fabric may delay or reorder *across* links but never loses or reorders
//! *within* one. Two topologies:
//!
//! - **star**: every board has one uplink/downlink pair to a top-of-rack
//!   switch that store-and-forwards on the destination header — one hop up,
//!   one hop down, contention at the switch ports;
//! - **full mesh**: a dedicated link pair per board pair — no switch, no
//!   cross-traffic interference, more links.
//!
//! Chaos hooks ([`Fabric::set_link`]) cut or restore links; a cut link
//! drops frames in both directions and the ARQ retransmits once it heals,
//! so a *transient* cut costs latency while a *permanent* one strands
//! traffic until lease expiry fails the directory over.
//!
//! Everything ticks in `BTreeMap` key order, so a fabric built from the
//! same config and seed replays byte-identically.

use crate::directory::DirEntry;
use apiary_cap::ServiceId;
use apiary_net::arq::{Ack, GoBackNReceiver, GoBackNSender, Packet};
use apiary_net::{Frame, Wire};
use apiary_noc::NodeId;
use apiary_sim::{Cycle, Payload, Schedulable, Wakeup};
use std::collections::{BTreeMap, VecDeque};

/// Endpoint id of the top-of-rack switch (star topology only).
const TOR: u16 = u16::MAX;

/// Fabric shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// All boards hang off one top-of-rack switch.
    Star,
    /// A direct link pair between every board pair.
    FullMesh,
}

/// Per-link parameters (all links share them; asymmetric fabrics are not
/// modelled).
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Propagation delay, cycles.
    pub latency: u64,
    /// Serialisation bandwidth, bytes per cycle.
    pub bytes_per_cycle: u64,
    /// Per-frame loss probability (seeded per link from the fabric seed).
    pub loss: f64,
    /// Go-back-N window, packets.
    pub arq_window: usize,
    /// Go-back-N retransmission timeout, cycles.
    pub arq_timeout: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: 200,
            bytes_per_cycle: 16,
            loss: 0.0,
            arq_window: 64,
            arq_timeout: 2_000,
        }
    }
}

/// Fabric configuration.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Shape.
    pub topology: Topology,
    /// Link parameters.
    pub link: LinkConfig,
    /// Seed for link loss models.
    pub seed: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            topology: Topology::Star,
            link: LinkConfig::default(),
            seed: 0xFAB,
        }
    }
}

/// A message between boards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMsg {
    /// Originating board.
    pub src: u16,
    /// Destination board.
    pub dst: u16,
    /// What it carries.
    pub body: Body,
}

/// Fabric message bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// Remote capability invocation: run `service` on the destination
    /// board, reply with the end-to-end `tag`.
    Invoke {
        /// Target service id on the destination board.
        service: u32,
        /// End-to-end correlation tag.
        tag: u64,
        /// Request payload.
        payload: Vec<u8>,
    },
    /// Response to an [`Body::Invoke`].
    Reply {
        /// End-to-end correlation tag.
        tag: u64,
        /// The invocation failed (service missing, tile fail-stopped, …).
        is_error: bool,
        /// Response payload.
        payload: Vec<u8>,
    },
    /// Anti-entropy directory exchange.
    Gossip {
        /// Full snapshot of the sender's directory.
        entries: Vec<DirEntry>,
    },
    /// Live-migration state transfer: the source board ships `name`'s
    /// quiesced snapshot to the destination. Transfer time is whatever the
    /// link's bandwidth/latency model charges these bytes — blackout
    /// scales with state size by construction.
    Migrate {
        /// Service id the destination should adopt.
        service: u32,
        /// Directory name of the replica being moved.
        name: String,
        /// Encoded [`apiary_core::Snapshot`] of the service's state.
        snapshot: Vec<u8>,
    },
    /// Checkpoint replication: a board pushes its latest snapshot of a
    /// replica to a peer so a board kill can recover warm elsewhere.
    Checkpoint {
        /// Service id on the owning board.
        service: u32,
        /// Directory name of the replica the snapshot belongs to.
        name: String,
        /// Encoded [`apiary_core::Snapshot`] (carries its own seq).
        snapshot: Vec<u8>,
    },
}

impl ClusterMsg {
    /// Serialises for the wire. The fabric routes on the decoded `dst`, so
    /// the header rides in-band like any real switch expects.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.src.to_le_bytes());
        out.extend_from_slice(&self.dst.to_le_bytes());
        match &self.body {
            Body::Invoke {
                service,
                tag,
                payload,
            } => {
                out.push(0);
                out.extend_from_slice(&service.to_le_bytes());
                out.extend_from_slice(&tag.to_le_bytes());
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(payload);
            }
            Body::Reply {
                tag,
                is_error,
                payload,
            } => {
                out.push(1);
                out.push(u8::from(*is_error));
                out.extend_from_slice(&tag.to_le_bytes());
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(payload);
            }
            Body::Gossip { entries } => {
                out.push(2);
                out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                for e in entries {
                    out.extend_from_slice(&e.home.to_le_bytes());
                    out.extend_from_slice(&e.node.0.to_le_bytes());
                    out.extend_from_slice(&e.service.0.to_le_bytes());
                    out.extend_from_slice(&e.version.to_le_bytes());
                    out.extend_from_slice(&e.expires_at.0.to_le_bytes());
                    out.push(u8::from(e.withdrawn));
                    let name = e.name.as_bytes();
                    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
                    out.extend_from_slice(name);
                }
            }
            Body::Migrate {
                service,
                name,
                snapshot,
            }
            | Body::Checkpoint {
                service,
                name,
                snapshot,
            } => {
                out.push(if matches!(self.body, Body::Migrate { .. }) {
                    3
                } else {
                    4
                });
                out.extend_from_slice(&service.to_le_bytes());
                let nb = name.as_bytes();
                out.extend_from_slice(&(nb.len() as u16).to_le_bytes());
                out.extend_from_slice(nb);
                out.extend_from_slice(&(snapshot.len() as u32).to_le_bytes());
                out.extend_from_slice(snapshot);
            }
        }
        out
    }

    /// Parses a wire payload; `None` for malformed bytes.
    pub fn decode(buf: &[u8]) -> Option<ClusterMsg> {
        let mut r = Reader(buf);
        let src = r.u16()?;
        let dst = r.u16()?;
        let body = match r.u8()? {
            0 => {
                let service = r.u32()?;
                let tag = r.u64()?;
                let len = r.u32()? as usize;
                Body::Invoke {
                    service,
                    tag,
                    payload: r.bytes(len)?.to_vec(),
                }
            }
            1 => {
                let is_error = r.u8()? != 0;
                let tag = r.u64()?;
                let len = r.u32()? as usize;
                Body::Reply {
                    tag,
                    is_error,
                    payload: r.bytes(len)?.to_vec(),
                }
            }
            2 => {
                let count = r.u16()? as usize;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let home = r.u16()?;
                    let node = NodeId(r.u16()?);
                    let service = ServiceId(r.u32()?);
                    let version = r.u64()?;
                    let expires_at = Cycle(r.u64()?);
                    let withdrawn = r.u8()? != 0;
                    let name_len = r.u16()? as usize;
                    let name = String::from_utf8(r.bytes(name_len)?.to_vec()).ok()?;
                    entries.push(DirEntry {
                        name,
                        home,
                        node,
                        service,
                        version,
                        expires_at,
                        withdrawn,
                    });
                }
                Body::Gossip { entries }
            }
            tag @ (3 | 4) => {
                let service = r.u32()?;
                let name_len = r.u16()? as usize;
                let name = String::from_utf8(r.bytes(name_len)?.to_vec()).ok()?;
                let len = r.u32()? as usize;
                let snapshot = r.bytes(len)?.to_vec();
                if tag == 3 {
                    Body::Migrate {
                        service,
                        name,
                        snapshot,
                    }
                } else {
                    Body::Checkpoint {
                        service,
                        name,
                        snapshot,
                    }
                }
            }
            _ => return None,
        };
        if !r.0.is_empty() {
            return None;
        }
        Some(ClusterMsg { src, dst, body })
    }
}

struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Some(head)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.bytes(1)?[0])
    }
    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.bytes(2)?.try_into().ok()?))
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.bytes(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.bytes(8)?.try_into().ok()?))
    }
}

/// One reliable directed link: wire + ARQ + an unbounded egress backlog
/// (the egress proxy's queue — the ARQ window is the real admission gate).
#[derive(Debug)]
struct Link {
    data: Wire,
    acks: Wire,
    tx: GoBackNSender,
    rx: GoBackNReceiver,
    backlog: VecDeque<Payload>,
    up: bool,
    cut_drops: u64,
    acks_coalesced: u64,
}

impl Link {
    fn new(cfg: &LinkConfig, seed: u64) -> Link {
        let data = if cfg.loss > 0.0 {
            Wire::with_loss(cfg.latency, cfg.bytes_per_cycle, cfg.loss, seed)
        } else {
            Wire::new(cfg.latency, cfg.bytes_per_cycle)
        };
        Link {
            data,
            // Acks are tiny and travel the reverse direction; loss on them
            // only delays (cumulative acks), so they share the loss model
            // through the data wire's retransmissions instead.
            acks: Wire::new(cfg.latency, cfg.bytes_per_cycle),
            // Size-aware ARQ deadlines: a bulk frame (e.g. a migration
            // snapshot) can take longer to serialize than the flat timeout;
            // scaling the deadline with the outstanding bytes prevents a
            // retransmission storm while the first copy is still on the wire.
            tx: GoBackNSender::new(cfg.arq_window, cfg.arq_timeout)
                .with_serialization_rate(cfg.bytes_per_cycle),
            rx: GoBackNReceiver::new(),
            backlog: VecDeque::new(),
            up: true,
            cut_drops: 0,
            acks_coalesced: 0,
        }
    }

    /// One cycle: admit backlog into the ARQ window, transmit, receive,
    /// ack. Returns delivered payloads and how many packets were
    /// retransmitted this cycle.
    fn pump(&mut self, now: Cycle) -> (Vec<Payload>, u64) {
        let retx_before = self.tx.retransmissions;
        while let Some(m) = self.backlog.front() {
            // Admission is a refcount bump: the ARQ window and the backlog
            // share the same buffer.
            if self.tx.offer(m.clone(), now) {
                self.backlog.pop_front();
            } else {
                break;
            }
        }
        for pkt in self.tx.poll(now) {
            if self.up {
                self.data.push(
                    now,
                    Frame {
                        client: 0,
                        port: 0,
                        tag: pkt.seq,
                        payload: pkt.payload,
                    },
                );
            } else {
                self.cut_drops += 1;
            }
        }
        let mut out = Vec::new();
        // Acks are cumulative and the receiver's expected-seq only grows,
        // so a burst of in-order arrivals needs exactly one ack frame: the
        // last one of the burst dominates every earlier one. Coalescing
        // frees the reverse wire of (burst - 1) minimum-size frames.
        let mut burst_ack: Option<Ack> = None;
        let mut burst_len = 0u64;
        while let Some(f) = self.data.pop_due(now) {
            if !self.up {
                self.cut_drops += 1;
                continue;
            }
            let (delivered, ack) = self.rx.on_packet(Packet {
                seq: f.tag,
                payload: f.payload,
            });
            if let Some(d) = delivered {
                out.push(d);
            }
            burst_ack = Some(ack);
            burst_len += 1;
        }
        if let Some(ack) = burst_ack {
            self.acks_coalesced += burst_len - 1;
            self.acks.push(
                now,
                Frame {
                    client: 0,
                    port: 0,
                    tag: ack.next,
                    payload: Payload::empty(),
                },
            );
        }
        while let Some(a) = self.acks.pop_due(now) {
            if self.up {
                self.tx.on_ack(Ack { next: a.tag }, now);
            } else {
                self.cut_drops += 1;
            }
        }
        (out, self.tx.retransmissions - retx_before)
    }

    fn idle(&self) -> bool {
        self.backlog.is_empty() && self.tx.idle() && self.data.in_flight() == 0
    }

    /// The earliest cycle at or after `next` at which a pump can do
    /// anything: transmit queued or backlogged packets, hit the ARQ
    /// retransmission timer, or receive a frame on either wire.
    /// [`Cycle::MAX`] when the link is completely quiet. Pumping earlier is
    /// a harmless no-op; pumping later than this would change ARQ timing.
    fn next_activity(&self, next: Cycle) -> Cycle {
        let mut due = Cycle::MAX;
        if self.tx.queued() > 0 || (!self.backlog.is_empty() && self.tx.window_free()) {
            due = next;
        }
        if let Some(t) = self.tx.next_timeout() {
            due = due.min(t.max(next));
        }
        if let Some(t) = self.data.next_due() {
            due = due.min(t.max(next));
        }
        if let Some(t) = self.acks.next_due() {
            due = due.min(t.max(next));
        }
        due
    }
}

/// Aggregate fabric counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Messages delivered to their destination board.
    pub delivered: u64,
    /// ARQ retransmissions across all links.
    pub retransmissions: u64,
    /// Frames dropped because a link was cut.
    pub cut_drops: u64,
    /// Frames dropped by the links' loss models.
    pub loss_drops: u64,
    /// Redundant cumulative acks suppressed by per-burst coalescing.
    pub acks_coalesced: u64,
}

/// The inter-board network.
#[derive(Debug)]
pub struct Fabric {
    cfg: FabricConfig,
    boards: u16,
    links: BTreeMap<(u16, u16), Link>,
    delivered: u64,
}

impl Fabric {
    /// Builds the fabric for `boards` boards.
    pub fn new(boards: u16, cfg: FabricConfig) -> Fabric {
        let mut links = BTreeMap::new();
        let mut link_seed = cfg.seed;
        let mut mk = |a: u16, b: u16, links: &mut BTreeMap<(u16, u16), Link>| {
            link_seed = link_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(1);
            links.insert((a, b), Link::new(&cfg.link, link_seed));
        };
        match cfg.topology {
            Topology::Star => {
                for b in 0..boards {
                    mk(b, TOR, &mut links);
                    mk(TOR, b, &mut links);
                }
            }
            Topology::FullMesh => {
                for a in 0..boards {
                    for b in 0..boards {
                        if a != b {
                            mk(a, b, &mut links);
                        }
                    }
                }
            }
        }
        Fabric {
            cfg,
            boards,
            links,
            delivered: 0,
        }
    }

    /// Number of boards the fabric joins.
    pub fn boards(&self) -> u16 {
        self.boards
    }

    /// Queues a message at its source board's egress.
    pub fn send(&mut self, msg: &ClusterMsg) {
        let first_hop = match self.cfg.topology {
            Topology::Star => (msg.src, TOR),
            Topology::FullMesh => (msg.src, msg.dst),
        };
        if let Some(l) = self.links.get_mut(&first_hop) {
            // Encode once; every later hop and retransmission shares the
            // buffer.
            l.backlog.push_back(msg.encode().into());
        }
    }

    /// Cuts (`up = false`) or restores a link. `b = None` cuts the board's
    /// uplink/downlink pair in a star, or *all* of its links in a mesh;
    /// `b = Some(peer)` cuts the pair to one peer (mesh) or degrades to the
    /// board's uplink (star — there is no per-peer link to cut).
    pub fn set_link(&mut self, a: u16, b: Option<u16>, up: bool) {
        let peers: Vec<(u16, u16)> = self
            .links
            .keys()
            .copied()
            .filter(|&(x, y)| match (self.cfg.topology, b) {
                (Topology::Star, _) => x == a || y == a,
                (Topology::FullMesh, None) => x == a || y == a,
                (Topology::FullMesh, Some(p)) => (x, y) == (a, p) || (x, y) == (p, a),
            })
            .collect();
        for k in peers {
            if let Some(l) = self.links.get_mut(&k) {
                l.up = up;
            }
        }
    }

    /// One cycle for every link, in deterministic key order. Star uplinks
    /// sort before ToR downlinks, so a frame can be switched the same cycle
    /// it reaches the ToR. Returns decoded deliveries plus per-source-board
    /// retransmission counts for the tracer.
    pub fn step(&mut self, now: Cycle) -> (Vec<ClusterMsg>, Vec<(u16, u64)>) {
        let keys: Vec<(u16, u16)> = self.links.keys().copied().collect();
        let mut out = Vec::new();
        let mut retx = Vec::new();
        for key in keys {
            let (payloads, r) = self.links.get_mut(&key).expect("key just listed").pump(now);
            if r > 0 && key.0 != TOR {
                retx.push((key.0, r));
            }
            for p in payloads {
                let Some(msg) = ClusterMsg::decode(&p) else {
                    continue;
                };
                if key.1 == TOR {
                    // Store-and-forward at the switch: onto the downlink.
                    if let Some(down) = self.links.get_mut(&(TOR, msg.dst)) {
                        down.backlog.push_back(p);
                    }
                } else {
                    self.delivered += 1;
                    out.push(msg);
                }
            }
        }
        (out, retx)
    }

    /// Advances the fabric by one cycle.
    #[deprecated(note = "use `Fabric::step` (or drive via `Schedulable::wake`)")]
    pub fn tick(&mut self, now: Cycle) -> (Vec<ClusterMsg>, Vec<(u16, u64)>) {
        self.step(now)
    }

    /// The earliest cycle at or after `next` at which any link has work:
    /// a queued transmission, an ARQ retransmission deadline, or a frame
    /// arriving. [`Cycle::MAX`] when the whole fabric is quiet. Event-clock
    /// drivers may skip every cycle strictly before this without changing
    /// a single delivery or retransmission.
    pub fn next_activity(&self, next: Cycle) -> Cycle {
        self.links
            .values()
            .map(|l| l.next_activity(next))
            .min()
            .unwrap_or(Cycle::MAX)
    }

    /// Nothing queued, unacked, or in flight anywhere.
    pub fn idle(&self) -> bool {
        self.links.values().all(Link::idle)
    }

    /// Aggregate counters.
    pub fn stats(&self) -> FabricStats {
        let mut s = FabricStats {
            delivered: self.delivered,
            ..FabricStats::default()
        };
        for l in self.links.values() {
            s.retransmissions += l.tx.retransmissions;
            s.cut_drops += l.cut_drops;
            s.loss_drops += l.data.dropped;
            s.acks_coalesced += l.acks_coalesced;
        }
        s
    }
}

/// Deliveries and per-source-board retransmission counts accumulated by a
/// [`Schedulable`]-driven fabric (the `Ctx` is the output sink).
pub type FabricOutput = (Vec<ClusterMsg>, Vec<(u16, u64)>);

impl Schedulable<FabricOutput> for Fabric {
    fn wake(&mut self, now: Cycle, out: &mut FabricOutput) -> Wakeup {
        let (msgs, retx) = self.step(now);
        out.0.extend(msgs);
        out.1.extend(retx);
        match self.next_activity(now.saturating_add(1)) {
            Cycle::MAX => Wakeup::Idle,
            t => Wakeup::At(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: u16, dst: u16, tag: u64) -> ClusterMsg {
        ClusterMsg {
            src,
            dst,
            body: Body::Invoke {
                service: 7,
                tag,
                payload: vec![1, 2, 3],
            },
        }
    }

    fn run(f: &mut Fabric, from: Cycle, cycles: u64) -> Vec<ClusterMsg> {
        let mut out = Vec::new();
        for c in 0..cycles {
            out.extend(f.step(Cycle(from.0 + c)).0);
        }
        out
    }

    #[test]
    fn codec_round_trips() {
        for m in [
            msg(0, 3, 42),
            ClusterMsg {
                src: 2,
                dst: 0,
                body: Body::Reply {
                    tag: 9,
                    is_error: true,
                    payload: vec![5],
                },
            },
            ClusterMsg {
                src: 1,
                dst: 2,
                body: Body::Gossip {
                    entries: vec![DirEntry {
                        name: "kv".into(),
                        home: 1,
                        node: NodeId(4),
                        service: ServiceId(7),
                        version: 3,
                        expires_at: Cycle(500),
                        withdrawn: false,
                    }],
                },
            },
            ClusterMsg {
                src: 0,
                dst: 1,
                body: Body::Migrate {
                    service: 12,
                    name: "kv-a".into(),
                    snapshot: vec![0xAB; 100],
                },
            },
            ClusterMsg {
                src: 1,
                dst: 0,
                body: Body::Checkpoint {
                    service: 12,
                    name: "kv-a".into(),
                    snapshot: vec![0xCD; 40],
                },
            },
        ] {
            assert_eq!(ClusterMsg::decode(&m.encode()), Some(m));
        }
        assert_eq!(ClusterMsg::decode(&[1, 2, 3]), None);
        // Truncated and trailing-byte migrate frames are rejected.
        let enc = ClusterMsg {
            src: 0,
            dst: 1,
            body: Body::Migrate {
                service: 1,
                name: "x".into(),
                snapshot: vec![1, 2, 3],
            },
        }
        .encode();
        assert_eq!(ClusterMsg::decode(&enc[..enc.len() - 1]), None);
        let mut trailing = enc.clone();
        trailing.push(0);
        assert_eq!(ClusterMsg::decode(&trailing), None);
    }

    #[test]
    fn star_delivers_via_tor() {
        let mut f = Fabric::new(4, FabricConfig::default());
        f.send(&msg(0, 3, 1));
        let got = run(&mut f, Cycle(0), 1_000);
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].src, got[0].dst), (0, 3));
        assert!(f.idle());
        assert_eq!(f.stats().delivered, 1);
    }

    #[test]
    fn mesh_is_faster_than_star() {
        // Same link parameters: one direct hop beats up + switch + down.
        let latency = |topology| {
            let mut f = Fabric::new(
                2,
                FabricConfig {
                    topology,
                    ..FabricConfig::default()
                },
            );
            f.send(&msg(0, 1, 1));
            for c in 0..10_000 {
                if !f.step(Cycle(c)).0.is_empty() {
                    return c;
                }
            }
            panic!("never delivered");
        };
        assert!(latency(Topology::FullMesh) < latency(Topology::Star));
    }

    #[test]
    fn links_preserve_order() {
        let mut f = Fabric::new(2, FabricConfig::default());
        for tag in 0..20 {
            f.send(&msg(0, 1, tag));
        }
        let got = run(&mut f, Cycle(0), 5_000);
        let tags: Vec<u64> = got
            .iter()
            .map(|m| match m.body {
                Body::Invoke { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn transient_cut_heals_through_arq() {
        let mut f = Fabric::new(2, FabricConfig::default());
        f.send(&msg(0, 1, 1));
        f.set_link(0, None, false);
        let got = run(&mut f, Cycle(0), 3_000);
        assert!(got.is_empty(), "cut link delivers nothing");
        f.set_link(0, None, true);
        let got = run(&mut f, Cycle(3_000), 10_000);
        assert_eq!(got.len(), 1, "ARQ retransmits after the cut heals");
        let s = f.stats();
        assert!(s.retransmissions > 0);
        assert!(s.cut_drops > 0);
    }

    #[test]
    fn lossy_link_still_delivers_everything() {
        let mut f = Fabric::new(
            2,
            FabricConfig {
                topology: Topology::FullMesh,
                link: LinkConfig {
                    loss: 0.2,
                    ..LinkConfig::default()
                },
                seed: 7,
            },
        );
        for tag in 0..40 {
            f.send(&msg(0, 1, tag));
        }
        let got = run(&mut f, Cycle(0), 200_000);
        assert_eq!(got.len(), 40);
        assert!(f.stats().loss_drops > 0, "the loss model actually fired");
    }
}
