//! Replica selection: power-of-two-choices over in-flight counts.
//!
//! The cluster keeps one counter per replica — requests outstanding
//! against it right now. Picking the globally least-loaded replica would
//! need a scan and herds every client onto the same target between
//! updates; picking uniformly at random ignores load entirely. Sampling
//! *two* replicas and taking the less loaded one gets exponentially better
//! tail behaviour than random for one extra lookup (Mitzenmacher), and it
//! fails over for free: a dead board stops completing requests, its
//! in-flight counts ratchet upward with every timeout-then-retry, and the
//! two-choice comparison starts steering everything else away — before
//! lease expiry removes it from the directory entirely.

use apiary_noc::NodeId;
use apiary_sim::SimRng;
use std::collections::BTreeMap;

/// A replica key: `(board, node)`.
pub type Replica = (u16, NodeId);

/// The replica-aware load balancer.
#[derive(Debug, Clone)]
pub struct Balancer {
    rng: SimRng,
    in_flight: BTreeMap<Replica, u64>,
    /// Picks made.
    pub picks: u64,
    /// Picks where the two sampled replicas had different loads (the
    /// second choice actually mattered).
    pub informed_picks: u64,
}

impl Balancer {
    /// Creates a balancer with its own seeded RNG.
    pub fn new(seed: u64) -> Balancer {
        Balancer {
            rng: SimRng::new(seed),
            in_flight: BTreeMap::new(),
            picks: 0,
            informed_picks: 0,
        }
    }

    /// Picks one of `candidates` by power-of-two-choices; ties go to the
    /// first sample — itself uniformly random, so an idle cluster load
    /// balances evenly — keeping picks deterministic given the RNG
    /// stream. Returns an index into `candidates`.
    pub fn pick(&mut self, candidates: &[Replica]) -> Option<usize> {
        match candidates.len() {
            0 => None,
            1 => {
                self.picks += 1;
                Some(0)
            }
            n => {
                self.picks += 1;
                let i = self.rng.gen_range(n as u64) as usize;
                let mut j = self.rng.gen_range(n as u64 - 1) as usize;
                if j >= i {
                    j += 1;
                }
                let (li, lj) = (self.load(candidates[i]), self.load(candidates[j]));
                if li != lj {
                    self.informed_picks += 1;
                }
                Some(if lj < li { j } else { i })
            }
        }
    }

    /// Requests currently outstanding against `r`.
    pub fn load(&self, r: Replica) -> u64 {
        self.in_flight.get(&r).copied().unwrap_or(0)
    }

    /// Records a request dispatched to `r`.
    pub fn started(&mut self, r: Replica) {
        *self.in_flight.entry(r).or_insert(0) += 1;
    }

    /// Records a request finished (reply, error, or timeout) at `r`.
    pub fn finished(&mut self, r: Replica) {
        if let Some(c) = self.in_flight.get_mut(&r) {
            *c = c.saturating_sub(1);
        }
    }

    /// Total requests in flight across all replicas.
    pub fn total_in_flight(&self) -> u64 {
        self.in_flight.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replicas(n: u16) -> Vec<Replica> {
        (0..n).map(|b| (b, NodeId(5))).collect()
    }

    #[test]
    fn empty_and_singleton() {
        let mut b = Balancer::new(1);
        assert_eq!(b.pick(&[]), None);
        assert_eq!(b.pick(&replicas(1)), Some(0));
    }

    #[test]
    fn avoids_the_loaded_replica() {
        let mut b = Balancer::new(1);
        let rs = replicas(2);
        // Pile load onto replica 0; every two-choice sample sees it.
        for _ in 0..100 {
            b.started(rs[0]);
        }
        for _ in 0..50 {
            let k = b.pick(&rs).expect("non-empty");
            assert_eq!(k, 1, "two choices always include the idle replica");
        }
        assert_eq!(b.informed_picks, 50);
    }

    #[test]
    fn spreads_load_across_equal_replicas() {
        let mut b = Balancer::new(42);
        let rs = replicas(4);
        let mut counts = [0u64; 4];
        for _ in 0..400 {
            let k = b.pick(&rs).expect("non-empty");
            counts[k] += 1;
            b.started(rs[k]);
            // Completions keep pace, so loads stay comparable.
            b.finished(rs[k]);
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 40, "replica {i} starved: {counts:?}");
        }
    }

    #[test]
    fn finished_is_saturating_and_untracked_replicas_are_idle() {
        let mut b = Balancer::new(1);
        let r = (0, NodeId(1));
        b.finished(r);
        assert_eq!(b.load(r), 0);
        b.started(r);
        b.started(r);
        assert_eq!(b.load(r), 2);
        b.finished(r);
        assert_eq!(b.load(r), 1);
        assert_eq!(b.total_in_flight(), 1);
    }

    #[test]
    fn same_seed_same_decisions() {
        let rs = replicas(8);
        let picks = |seed| {
            let mut b = Balancer::new(seed);
            (0..100)
                .map(|_| {
                    let k = b.pick(&rs).expect("non-empty");
                    b.started(rs[k]);
                    k
                })
                .collect::<Vec<usize>>()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8), "different seeds explore differently");
    }
}
