//! The global service directory.
//!
//! `core/registry.rs` answers "which node serves `kv-store`?" for one
//! board. Across boards the same question needs a *home* scope (which
//! board published the binding), a liveness story (a board that dies must
//! stop being an answer), and a distribution story (no central registry —
//! the whole point of scale-out is surviving any single board).
//!
//! Each board runs one [`Directory`]. Entries are keyed `(name, home
//! board)` so replicas of one service on different boards coexist; each
//! entry carries a version counter and a lease deadline. The home board is
//! the only writer for its own entries: publish, withdraw (a tombstone, so
//! the removal propagates rather than resurrects) and periodic renewal all
//! bump the version. Anti-entropy gossip pushes full snapshots between
//! boards; [`Directory::merge`] keeps whichever version is newer. Liveness
//! falls out of the lease: a dead board stops renewing, its versions stop
//! advancing, and every other board expires its entries within one lease —
//! that expiry is what fails the load balancer over.

use apiary_cap::ServiceId;
use apiary_noc::NodeId;
use apiary_sim::Cycle;
use std::collections::BTreeMap;

/// One replica binding in the global directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Logical service name.
    pub name: String,
    /// Board that published (and owns) this binding.
    pub home: u16,
    /// Node hosting the replica on its home board.
    pub node: NodeId,
    /// The service id clients invoke.
    pub service: ServiceId,
    /// Monotonic per-entry version; every mutation by the home board
    /// (publish, withdraw, lease renewal) bumps it, so gossip can order
    /// conflicting copies.
    pub version: u64,
    /// Lease deadline: the entry (or its tombstone) is dead after this.
    pub expires_at: Cycle,
    /// Tombstone flag: the home board withdrew the binding.
    pub withdrawn: bool,
}

impl DirEntry {
    /// Live means: not withdrawn and the lease has not lapsed.
    pub fn live(&self, now: Cycle) -> bool {
        !self.withdrawn && self.expires_at > now
    }
}

/// One board's view of the cluster-wide service directory.
#[derive(Debug, Clone)]
pub struct Directory {
    board: u16,
    lease: u64,
    entries: BTreeMap<(String, u16), DirEntry>,
    /// Publishes that displaced a live binding of the same name here.
    pub displaced: u64,
    /// Entries accepted from gossip (newer version than ours).
    pub merged_in: u64,
    /// Entries dropped by lease expiry.
    pub expired: u64,
}

impl Directory {
    /// Creates the directory for `board` with the given lease (cycles).
    pub fn new(board: u16, lease: u64) -> Directory {
        Directory {
            board,
            lease,
            entries: BTreeMap::new(),
            displaced: 0,
            merged_in: 0,
            expired: 0,
        }
    }

    /// The board this directory is authoritative for.
    pub fn board(&self) -> u16 {
        self.board
    }

    /// Publishes a local binding. Like
    /// [`apiary_core::registry::RegistryService::publish`], the displaced
    /// live binding (if any) is returned so the kernel can notice a squat
    /// instead of silently replacing it.
    pub fn publish(
        &mut self,
        now: Cycle,
        name: &str,
        service: ServiceId,
        node: NodeId,
    ) -> Option<(ServiceId, NodeId)> {
        let key = (name.to_string(), self.board);
        let version = self.entries.get(&key).map_or(1, |e| e.version + 1);
        let old = self.entries.insert(
            key,
            DirEntry {
                name: name.to_string(),
                home: self.board,
                node,
                service,
                version,
                expires_at: now + self.lease,
                withdrawn: false,
            },
        );
        match old {
            Some(e) if e.live(now) => {
                self.displaced += 1;
                Some((e.service, e.node))
            }
            _ => None,
        }
    }

    /// Withdraws a local binding, leaving a versioned tombstone that gossip
    /// propagates (deleting outright would let a peer's stale copy
    /// resurrect the entry). Returns whether a live binding existed.
    pub fn withdraw(&mut self, now: Cycle, name: &str) -> bool {
        let key = (name.to_string(), self.board);
        match self.entries.get_mut(&key) {
            Some(e) if e.live(now) => {
                e.withdrawn = true;
                e.version += 1;
                e.expires_at = now + self.lease;
                true
            }
            _ => false,
        }
    }

    /// Renews the lease on every live local entry, bumping versions so the
    /// renewal propagates through gossip. The home board calls this each
    /// gossip round; a dead board stops calling it, which is exactly how
    /// the rest of the cluster finds out.
    pub fn renew_local(&mut self, now: Cycle) {
        for e in self.entries.values_mut() {
            if e.home == self.board && e.live(now) {
                e.version += 1;
                e.expires_at = now + self.lease;
            }
        }
    }

    /// Merges a gossiped snapshot: for entries about *other* boards, the
    /// higher version wins; entries claiming our own board are ignored (we
    /// are authoritative for ourselves — accepting them would let a stale
    /// peer resurrect our withdrawn services).
    pub fn merge(&mut self, entries: &[DirEntry]) {
        for e in entries {
            if e.home == self.board {
                continue;
            }
            let key = (e.name.clone(), e.home);
            match self.entries.get(&key) {
                Some(ours) if ours.version >= e.version => {}
                _ => {
                    self.entries.insert(key, e.clone());
                    self.merged_in += 1;
                }
            }
        }
    }

    /// Drops entries (and tombstones) whose lease has lapsed, returning
    /// them so the kernel can revoke any capabilities minted against them.
    pub fn sweep(&mut self, now: Cycle) -> Vec<DirEntry> {
        let dead: Vec<(String, u16)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.expires_at <= now)
            .map(|(k, _)| k.clone())
            .collect();
        let mut out = Vec::with_capacity(dead.len());
        for k in dead {
            if let Some(e) = self.entries.remove(&k) {
                self.expired += 1;
                out.push(e);
            }
        }
        out
    }

    /// Every live replica of `name`, in home-board order (deterministic:
    /// the map is keyed `(name, home)`).
    pub fn lookup_all(&self, now: Cycle, name: &str) -> Vec<&DirEntry> {
        self.entries
            .range((name.to_string(), 0)..=(name.to_string(), u16::MAX))
            .map(|(_, e)| e)
            .filter(|e| e.live(now))
            .collect()
    }

    /// The live local binding for `name`, if any.
    pub fn lookup_local(&self, now: Cycle, name: &str) -> Option<&DirEntry> {
        self.entries
            .get(&(name.to_string(), self.board))
            .filter(|e| e.live(now))
    }

    /// Full-state snapshot for anti-entropy gossip (tombstones included).
    pub fn snapshot(&self) -> Vec<DirEntry> {
        self.entries.values().cloned().collect()
    }

    /// Total entries held, tombstones included.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEASE: u64 = 100;

    fn dir(board: u16) -> Directory {
        Directory::new(board, LEASE)
    }

    #[test]
    fn publish_lookup_and_displacement() {
        let mut d = dir(0);
        assert_eq!(d.publish(Cycle(0), "kv", ServiceId(7), NodeId(3)), None);
        assert_eq!(d.lookup_all(Cycle(1), "kv").len(), 1);
        // Republishing the same name displaces the live binding.
        assert_eq!(
            d.publish(Cycle(1), "kv", ServiceId(8), NodeId(4)),
            Some((ServiceId(7), NodeId(3)))
        );
        assert_eq!(d.displaced, 1);
        let live = d.lookup_all(Cycle(2), "kv");
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].service, ServiceId(8));
    }

    #[test]
    fn replicas_on_different_boards_coexist() {
        let mut a = dir(0);
        let mut b = dir(1);
        assert_eq!(a.publish(Cycle(0), "kv", ServiceId(7), NodeId(3)), None);
        assert_eq!(b.publish(Cycle(0), "kv", ServiceId(7), NodeId(5)), None);
        a.merge(&b.snapshot());
        let live = a.lookup_all(Cycle(1), "kv");
        assert_eq!(live.len(), 2);
        assert_eq!((live[0].home, live[1].home), (0, 1));
    }

    #[test]
    fn withdraw_tombstone_wins_over_stale_copy() {
        let mut home = dir(0);
        let mut peer = dir(1);
        assert_eq!(home.publish(Cycle(0), "kv", ServiceId(7), NodeId(3)), None);
        peer.merge(&home.snapshot());
        assert_eq!(peer.lookup_all(Cycle(1), "kv").len(), 1);
        // Home withdraws; the tombstone's higher version beats the peer's
        // live copy, and the peer's stale snapshot cannot resurrect it.
        assert!(home.withdraw(Cycle(2), "kv"));
        let stale = peer.snapshot();
        peer.merge(&home.snapshot());
        assert!(peer.lookup_all(Cycle(3), "kv").is_empty());
        home.merge(&stale);
        assert!(home.lookup_all(Cycle(3), "kv").is_empty());
    }

    #[test]
    fn scale_to_zero_tombstone_blocks_third_board_resurrection() {
        // Regression for the serverless scale-to-zero path: teardown must
        // *withdraw* (tombstone) the binding, not merely let the lease
        // lapse. With expiry alone, a peer that gossiped before learning of
        // the teardown re-advertises the dead function to a third board,
        // which then steers invocations at a decommissioned tile.
        let mut home = dir(0);
        let mut stale_peer = dir(1);
        let mut third = dir(2);
        assert_eq!(home.publish(Cycle(0), "fn", ServiceId(7), NodeId(3)), None);
        stale_peer.merge(&home.snapshot());
        third.merge(&home.snapshot());
        assert_eq!(third.lookup_all(Cycle(1), "fn").len(), 1);

        // Scale-to-zero: home withdraws. The tombstone reaches the third
        // board, but the stale peer has not heard yet.
        assert!(home.withdraw(Cycle(2), "fn"));
        third.merge(&home.snapshot());
        assert!(third.lookup_all(Cycle(3), "fn").is_empty());

        // The stale peer's snapshot still carries the live (lower-version)
        // copy. It must NOT resurrect the binding at the third board.
        third.merge(&stale_peer.snapshot());
        assert!(
            third.lookup_all(Cycle(4), "fn").is_empty(),
            "stale peer re-advertised a torn-down function"
        );

        // And once the tombstone reaches the stale peer, it converges too.
        stale_peer.merge(&home.snapshot());
        assert!(stale_peer.lookup_all(Cycle(5), "fn").is_empty());
    }

    #[test]
    fn lease_expiry_removes_unrenewed_entries() {
        let mut home = dir(0);
        let mut peer = dir(1);
        assert_eq!(home.publish(Cycle(0), "kv", ServiceId(7), NodeId(3)), None);
        peer.merge(&home.snapshot());
        // Renewed entries survive the original deadline.
        home.renew_local(Cycle(90));
        peer.merge(&home.snapshot());
        assert_eq!(peer.lookup_all(Cycle(150), "kv").len(), 1);
        // Without further renewal (home board "dies"), the lease lapses.
        assert!(peer.lookup_all(Cycle(190 + 1), "kv").is_empty());
        let swept = peer.sweep(Cycle(191));
        assert_eq!(swept.len(), 1);
        assert_eq!(swept[0].home, 0);
        assert!(peer.is_empty());
    }

    #[test]
    fn merge_ignores_claims_about_our_own_board() {
        let mut home = dir(0);
        assert_eq!(home.publish(Cycle(0), "kv", ServiceId(7), NodeId(3)), None);
        let forged = vec![DirEntry {
            name: "kv".into(),
            home: 0,
            node: NodeId(9),
            service: ServiceId(99),
            version: 1_000,
            expires_at: Cycle(1_000_000),
            withdrawn: false,
        }];
        home.merge(&forged);
        let live = home.lookup_all(Cycle(1), "kv");
        assert_eq!(live[0].service, ServiceId(7), "authority stays local");
        assert_eq!(home.merged_in, 0);
    }

    #[test]
    fn renewal_bumps_version_so_it_propagates() {
        let mut home = dir(0);
        assert_eq!(home.publish(Cycle(0), "kv", ServiceId(7), NodeId(3)), None);
        let v0 = home.snapshot()[0].version;
        home.renew_local(Cycle(10));
        let snap = home.snapshot();
        assert!(snap[0].version > v0);
        assert_eq!(snap[0].expires_at, Cycle(10 + LEASE));
    }
}
