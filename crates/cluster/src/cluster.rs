//! [`ClusterSystem`]: N boards, one fabric, one global directory.
//!
//! Each board is a full [`System`] with a **gateway tile** — an idle
//! accelerator slot whose monitor the cluster kernel drives directly, the
//! same pattern the bench harness uses for external clients. The gateway
//! is both the board's ingress (remote invocations arrive here and are
//! forwarded to the local replica over a normal capability send) and its
//! egress proxy (local clients' remote invocations leave here).
//!
//! **Remote capability invocation.** When the directory steers a request
//! to another board, the kernel mints a [`CapKind::Remote`] capability at
//! the origin gateway — board id plus service id. A monitor cannot route
//! it (there is no local node to resolve), which is the point: the *only*
//! path for a remote cap is the egress proxy, which checks SEND rights on
//! the cap table like any other send, then frames the invocation onto the
//! fabric. Lease expiry revokes the cap, so authority over a vanished
//! board's services does not outlive the directory's knowledge of them.
//! The client keeps the retry/backoff and circuit breaker it already had
//! ([`apiary_net::RequestGen`]): a remote invocation that times out is
//! completed as an error, retried with backoff, and re-balanced — usually
//! onto a different replica.
//!
//! **Determinism.** Boards tick in index order, the fabric in link-key
//! order, directories and balancer state live in `BTreeMap`s, and every
//! random draw comes from seeded [`apiary_sim::SimRng`] streams. The same
//! config and seed replay byte-identically at any host parallelism — E17's
//! CI check.

use crate::balancer::Balancer;
use crate::directory::Directory;
use crate::fabric::{Body, ClusterMsg, Fabric, FabricConfig};
use apiary_accel::apps::idle::idle;
use apiary_cap::{CapKind, CapRef, Capability, Rights, ServiceId};
use apiary_core::process::OS_APP;
use apiary_core::supervisor::AccelFactory;
use apiary_core::{AppId, FaultPolicy, Snapshot, System, SystemConfig, SystemError};
use apiary_monitor::wire::{KIND_ERROR, KIND_REQUEST};
use apiary_net::{BreakerConfig, BreakerState, RequestGen, RetryPolicy, Workload};
use apiary_noc::{NodeId, TrafficClass};
use apiary_sim::{clock_mode, ClockMode, Cycle};
use apiary_trace::{EventKind, LatencyTracker};
use std::collections::BTreeMap;

/// High bit marks gateway-local ingress tags, so a board can tell replies
/// to forwarded remote work from replies to its own clients' local work.
/// Client tags are `client_id << 32 | seq` with 32-bit ids, so the spaces
/// cannot collide.
const INGRESS_BIT: u64 = 1 << 63;

/// Cluster configuration.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of boards.
    pub boards: u16,
    /// Per-board system configuration (every board is identical).
    pub system: SystemConfig,
    /// Inter-board network.
    pub fabric: FabricConfig,
    /// Which node on each board is the gateway tile.
    pub gateway: NodeId,
    /// Cycles between gossip rounds.
    pub gossip_interval: u64,
    /// Directory lease, cycles. Must comfortably exceed
    /// `gossip_interval × boards` or healthy entries flap.
    pub lease: u64,
    /// Cluster-level request timeout: a request with no reply after this
    /// many cycles is completed as an error (feeding the client's retry
    /// policy and breaker).
    pub request_timeout: u64,
    /// Seed for the balancer's RNG.
    pub seed: u64,
    /// Cycles a live migration quiesces at the source before the state
    /// snapshot is taken. The withdrawn directory entry steers new work
    /// away as the tombstone gossips; the window lets in-flight
    /// invocations drain while the replica is still serving.
    pub migration_quiesce: u64,
    /// Push each service's newest checkpoint to a peer board every gossip
    /// round, so a board kill can recover warm elsewhere
    /// ([`ClusterSystem::recover_replica`]).
    pub replicate_checkpoints: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            boards: 2,
            system: SystemConfig::default(),
            fabric: FabricConfig::default(),
            gateway: NodeId(0),
            gossip_interval: 500,
            lease: 6_000,
            request_timeout: 4_000,
            seed: 0xC105_7E12,
            migration_quiesce: 600,
            replicate_checkpoints: false,
        }
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// No live replica in the origin board's directory view.
    NoReplica,
    /// The origin board is dead (its NIC went with it).
    OriginDead,
    /// The gateway monitor refused the send (backpressure, rate limit, or
    /// a capability failure).
    Refused,
}

/// A finished request, surfaced to whichever client issued the tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Board whose client issued the request.
    pub origin: u16,
    /// The client's correlation tag.
    pub tag: u64,
    /// Error reply, refused send, or timeout.
    pub is_error: bool,
}

#[derive(Clone)]
struct ReplicaMeta {
    service: ServiceId,
    node: NodeId,
    app: AppId,
    policy: FaultPolicy,
    bitstream_bytes: u64,
}

struct Republish {
    name: String,
    meta: ReplicaMeta,
}

struct Ingress {
    src: u16,
    tag: u64,
}

struct Pending {
    origin: u16,
    target: (u16, NodeId),
    deadline: Cycle,
}

/// Phase of an in-flight live migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MigPhase {
    /// Source entry withdrawn; draining until the snapshot cycle.
    Quiesce { until: Cycle },
    /// Snapshot serialized onto the fabric; source already decommissioned.
    Transfer,
    /// Destination loading bitstream + state through the ICAP, awaiting
    /// republish.
    Restore,
}

/// One live migration in flight.
struct Migration {
    name: String,
    service: ServiceId,
    src: u16,
    dst: u16,
    dst_node: NodeId,
    app: AppId,
    policy: FaultPolicy,
    bitstream_bytes: u64,
    /// Consumed at restore; the same factory then seeds the destination
    /// supervisor's spec for future cold restarts.
    factory: Option<AccelFactory>,
    started_at: Cycle,
    snapshot_at: Cycle,
    state_bytes: u64,
    warm: bool,
    phase: MigPhase,
}

/// A completed live migration, with its measured phase boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationOutcome {
    /// Migrated service name.
    pub name: String,
    /// Its registry id.
    pub service: ServiceId,
    /// Source board.
    pub src: u16,
    /// Destination board.
    pub dst: u16,
    /// Serialized architectural state moved, bytes.
    pub state_bytes: u64,
    /// Cycle the migration was requested (source entry withdrawn).
    pub started_at: Cycle,
    /// Cycle the source stopped serving (snapshot taken, tile freed).
    pub snapshot_at: Cycle,
    /// Cycle the destination replica was republished and answering.
    pub restored_at: Cycle,
    /// `true` if the destination restored the snapshot (vs cold fallback).
    pub warm: bool,
}

impl MigrationOutcome {
    /// Cycles with no live replica: source down → destination republished.
    pub fn blackout(&self) -> u64 {
        self.restored_at - self.snapshot_at
    }
}

struct Board {
    sys: System,
    dir: Directory,
    alive: bool,
    /// Gateway caps to local replicas, by service id (from `attach_client`,
    /// so they survive supervisor restarts and migrations).
    local_caps: BTreeMap<u32, CapRef>,
    /// Gateway caps for remote invocation, by `(board, service)`.
    remote_caps: BTreeMap<(u16, u32), CapRef>,
    /// Forwarded remote work in flight on this board, by local ingress tag.
    ingress: BTreeMap<u64, Ingress>,
    /// Locally deployed replicas, by name.
    replicas: BTreeMap<String, ReplicaMeta>,
    /// Reconfigurations whose directory entry awaits republish.
    republish: Vec<Republish>,
}

/// The multi-board machine.
pub struct ClusterSystem {
    cfg: ClusterConfig,
    ticks: u64,
    boards: Vec<Board>,
    fabric: Fabric,
    balancer: Balancer,
    pending: BTreeMap<u64, Pending>,
    completions: Vec<Completion>,
    next_ingress: u64,
    /// Origin gateway → target-board ingress (outbound fabric hop).
    pub fabric_out: LatencyTracker,
    /// Target-board ingress → local replica reply (on-board time).
    pub on_board: LatencyTracker,
    /// Target-board reply → origin gateway (return fabric hop).
    pub fabric_back: LatencyTracker,
    /// Submit → successful completion, local and remote alike.
    pub end_to_end: LatencyTracker,
    /// Requests completed as errors by the cluster-level timeout.
    pub timeouts: u64,
    /// Fabric deliveries dropped because the destination board was dead.
    pub dead_board_drops: u64,
    /// Replies with no pending request (late replies to timed-out work).
    pub stale_replies: u64,
    /// Submits steered to the origin board itself.
    pub local_submitted: u64,
    /// Submits forwarded over the fabric.
    pub remote_submitted: u64,
    /// Submits the gateway monitor refused.
    pub refused: u64,
    /// Remote capabilities revoked on lease expiry.
    pub caps_revoked: u64,
    /// Live migrations aborted (board died, service could not snapshot,
    /// or the destination refused the restore).
    pub migrations_failed: u64,
    /// Checkpoints adopted from a peer via fabric replication.
    pub checkpoints_replicated: u64,
    /// In-flight migrations, by service id.
    migrations: BTreeMap<u32, Migration>,
    /// Completed migrations, in completion order.
    migrations_done: Vec<MigrationOutcome>,
    /// Highest checkpoint sequence replicated, per (home board, service).
    replicated_seq: BTreeMap<(u16, u32), u64>,
}

impl ClusterSystem {
    /// Builds the cluster: `boards` identical systems, a gateway installed
    /// on each, and the fabric between them.
    pub fn new(cfg: ClusterConfig) -> ClusterSystem {
        let mut boards = Vec::with_capacity(cfg.boards as usize);
        for b in 0..cfg.boards {
            let mut sys = System::new(cfg.system.clone());
            sys.install(cfg.gateway, Box::new(idle()), OS_APP, FaultPolicy::FailStop)
                .expect("gateway tile is free on a fresh board");
            boards.push(Board {
                sys,
                dir: Directory::new(b, cfg.lease),
                alive: true,
                local_caps: BTreeMap::new(),
                remote_caps: BTreeMap::new(),
                ingress: BTreeMap::new(),
                replicas: BTreeMap::new(),
                republish: Vec::new(),
            });
        }
        let fabric = Fabric::new(cfg.boards, cfg.fabric);
        let balancer = Balancer::new(cfg.seed);
        ClusterSystem {
            cfg,
            ticks: 0,
            boards,
            fabric,
            balancer,
            pending: BTreeMap::new(),
            completions: Vec::new(),
            next_ingress: 0,
            fabric_out: LatencyTracker::new(),
            on_board: LatencyTracker::new(),
            fabric_back: LatencyTracker::new(),
            end_to_end: LatencyTracker::new(),
            timeouts: 0,
            dead_board_drops: 0,
            stale_replies: 0,
            local_submitted: 0,
            remote_submitted: 0,
            refused: 0,
            caps_revoked: 0,
            migrations_failed: 0,
            checkpoints_replicated: 0,
            migrations: BTreeMap::new(),
            migrations_done: Vec::new(),
            replicated_seq: BTreeMap::new(),
        }
    }

    /// Current cycle (all live boards tick in lockstep).
    pub fn now(&self) -> Cycle {
        Cycle(self.ticks)
    }

    /// One board's system.
    pub fn board(&self, b: u16) -> &System {
        &self.boards[b as usize].sys
    }

    /// One board's system, mutably (chaos injection, inspection).
    pub fn board_mut(&mut self, b: u16) -> &mut System {
        &mut self.boards[b as usize].sys
    }

    /// One board's directory view.
    pub fn directory(&self, b: u16) -> &Directory {
        &self.boards[b as usize].dir
    }

    /// The inter-board network.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The replica balancer.
    pub fn balancer(&self) -> &Balancer {
        &self.balancer
    }

    /// Whether a board is alive.
    pub fn alive(&self, b: u16) -> bool {
        self.boards[b as usize].alive
    }

    /// Remote capabilities currently held at a board's gateway.
    pub fn remote_cap_count(&self, b: u16) -> usize {
        self.boards[b as usize].remote_caps.len()
    }

    /// Completed live migrations, in completion order.
    pub fn migration_outcomes(&self) -> &[MigrationOutcome] {
        &self.migrations_done
    }

    /// Live migrations currently in flight.
    pub fn migrations_in_flight(&self) -> usize {
        self.migrations.len()
    }

    /// Count of `Remote` trace events recorded at a board's gateway.
    pub fn remote_trace_count(&self, b: u16) -> u64 {
        self.boards[b as usize]
            .sys
            .tile(self.cfg.gateway)
            .monitor
            .tracer()
            .count(&EventKind::Remote {
                phase: "",
                board: 0,
                tag: 0,
            })
    }

    /// Deploys one replica of a named service: installs it under the
    /// board's supervisor, wires the gateway as a client (the wiring
    /// survives restarts and migrations), and publishes the binding in the
    /// board's directory — gossip does the rest. Returns the displaced
    /// binding if the name was already published here.
    #[allow(clippy::too_many_arguments)]
    pub fn deploy_replica(
        &mut self,
        board: u16,
        name: &str,
        service: ServiceId,
        node: NodeId,
        app: AppId,
        policy: FaultPolicy,
        bitstream_bytes: u64,
        factory: AccelFactory,
    ) -> Result<Option<(ServiceId, NodeId)>, SystemError> {
        let now = self.now();
        let b = &mut self.boards[board as usize];
        b.sys
            .deploy_service(service, node, app, policy, bitstream_bytes, factory)?;
        let cap = b.sys.attach_client(self.cfg.gateway, service)?;
        b.local_caps.insert(service.0, cap);
        b.replicas.insert(
            name.to_string(),
            ReplicaMeta {
                service,
                node,
                app,
                policy,
                bitstream_bytes,
            },
        );
        Ok(b.dir.publish(now, name, service, node))
    }

    /// Reconfigures the tile hosting a locally published replica:
    /// **withdraw-then-republish**. The directory entry is tombstoned
    /// before the bitstream starts loading (peers steer new work away as
    /// gossip spreads), and republished — with the gateway re-wired — only
    /// once the new accelerator is online. In-flight invocations against
    /// the tile get monitor error replies and re-balance through the
    /// client retry path.
    pub fn reconfigure_replica(
        &mut self,
        board: u16,
        name: &str,
        factory: AccelFactory,
        bitstream_bytes: u64,
    ) -> Result<(), SystemError> {
        let now = self.now();
        let b = &mut self.boards[board as usize];
        let meta = b
            .replicas
            .get(name)
            .cloned()
            .ok_or(SystemError::BadNode(NodeId(u16::MAX)))?;
        b.dir.withdraw(now, name);
        b.sys
            .reconfigure(meta.node, factory(), meta.app, meta.policy, bitstream_bytes)?;
        b.republish.push(Republish {
            name: name.to_string(),
            meta,
        });
        Ok(())
    }

    /// Starts a live migration of the named replica from `src` to a free
    /// tile on `dst`: **withdraw → quiesce → snapshot → transfer → restore
    /// → republish**. The source keeps serving through the quiesce window
    /// (new work is steered away as the withdrawal tombstone gossips),
    /// then stops at the snapshot cycle; the blackout ends when the
    /// destination replica is republished. Client capabilities survive the
    /// move: naming is late-bound, so the same service name simply
    /// resolves to the new home — no client re-attach.
    pub fn migrate_replica(
        &mut self,
        name: &str,
        src: u16,
        dst: u16,
        dst_node: NodeId,
        factory: AccelFactory,
    ) -> Result<(), SystemError> {
        let now = self.now();
        let bad = || SystemError::BadNode(NodeId(u16::MAX));
        if src == dst || !self.boards[src as usize].alive || !self.boards[dst as usize].alive {
            return Err(bad());
        }
        let meta = self.boards[src as usize]
            .replicas
            .get(name)
            .cloned()
            .ok_or_else(bad)?;
        if self.migrations.contains_key(&meta.service.0) {
            return Err(bad());
        }
        self.boards[src as usize].dir.withdraw(now, name);
        let gw = self.cfg.gateway;
        self.boards[src as usize]
            .sys
            .tile_mut(gw)
            .monitor
            .tracer_mut()
            .record(
                now,
                gw.0,
                EventKind::Remote {
                    phase: "migrate-quiesce",
                    board: dst,
                    tag: meta.service.0 as u64,
                },
            );
        self.migrations.insert(
            meta.service.0,
            Migration {
                name: name.to_string(),
                service: meta.service,
                src,
                dst,
                dst_node,
                app: meta.app,
                policy: meta.policy,
                bitstream_bytes: meta.bitstream_bytes,
                factory: Some(factory),
                started_at: now,
                snapshot_at: now,
                state_bytes: 0,
                warm: false,
                phase: MigPhase::Quiesce {
                    until: now + self.cfg.migration_quiesce,
                },
            },
        );
        Ok(())
    }

    /// Redeploys a replica on `board` from a checkpoint previously adopted
    /// over the fabric ([`ClusterConfig::replicate_checkpoints`]): warm if
    /// a verified snapshot of `service` is held, cold (factory-fresh)
    /// otherwise. The restore is priced through the ICAP like any
    /// reconfiguration — bitstream plus restored state. Returns whether
    /// the recovery was warm.
    #[allow(clippy::too_many_arguments)]
    pub fn recover_replica(
        &mut self,
        board: u16,
        name: &str,
        service: ServiceId,
        node: NodeId,
        app: AppId,
        policy: FaultPolicy,
        bitstream_bytes: u64,
        factory: AccelFactory,
    ) -> Result<bool, SystemError> {
        let b = &mut self.boards[board as usize];
        let state = b
            .sys
            .checkpoint_store_mut()
            .latest(service.0)
            .map(|s| s.state.clone());
        let mut accel = factory();
        let mut warm_bytes = 0u64;
        let warm = match state {
            Some(s) if accel.restore_state(&s).is_ok() => {
                warm_bytes = s.len() as u64;
                true
            }
            _ => false,
        };
        if !warm {
            // Never deploy a half-restored instance: rebuild fresh.
            accel = factory();
        }
        b.sys
            .reconfigure(node, accel, app, policy, bitstream_bytes + warm_bytes)?;
        if warm {
            b.sys.checkpoint_store_mut().warm_restores += 1;
        }
        b.sys
            .adopt_service(service, node, app, policy, bitstream_bytes, factory);
        let meta = ReplicaMeta {
            service,
            node,
            app,
            policy,
            bitstream_bytes,
        };
        b.replicas.insert(name.to_string(), meta.clone());
        b.republish.push(Republish {
            name: name.to_string(),
            meta,
        });
        Ok(warm)
    }

    /// Deploys a function replica into a warm-pool slot. Unlike
    /// [`ClusterSystem::deploy_replica`] (instantaneous install, used to
    /// seed experiments), the bitstream is priced through the ICAP like any
    /// partial reconfiguration, and the directory entry is published — with
    /// the gateway wired as a client — only once the tile is back online
    /// (via the republish queue). Returns the cycle the reconfiguration
    /// completes: the fabric-level share of the orchestrator's cold start.
    #[allow(clippy::too_many_arguments)]
    pub fn pool_deploy(
        &mut self,
        board: u16,
        name: &str,
        service: ServiceId,
        node: NodeId,
        app: AppId,
        policy: FaultPolicy,
        bitstream_bytes: u64,
        factory: AccelFactory,
    ) -> Result<Cycle, SystemError> {
        let b = &mut self.boards[board as usize];
        if !b.alive {
            return Err(SystemError::BadNode(node));
        }
        let done = b
            .sys
            .reconfigure(node, factory(), app, policy, bitstream_bytes)?;
        b.sys
            .adopt_service(service, node, app, policy, bitstream_bytes, factory);
        let meta = ReplicaMeta {
            service,
            node,
            app,
            policy,
            bitstream_bytes,
        };
        b.replicas.insert(name.to_string(), meta.clone());
        b.republish.push(Republish {
            name: name.to_string(),
            meta,
        });
        Ok(done)
    }

    /// Tears down a pooled replica (scale-to-zero): the directory entry is
    /// withdrawn with a **tombstone** — a version bump a stale peer
    /// snapshot cannot out-rank, so the binding stays dead cluster-wide —
    /// the tile is decommissioned, the gateway's local cap dropped, and
    /// every live board's remote cap against the binding proactively
    /// revoked. Refused while the tile's bitstream is still streaming
    /// through the ICAP: the completion would resurrect the accelerator on
    /// a decommissioned tile. Returns the freed node.
    pub fn pool_teardown(&mut self, board: u16, name: &str) -> Result<NodeId, SystemError> {
        let now = self.now();
        let bad = || SystemError::BadNode(NodeId(u16::MAX));
        let service;
        let node;
        {
            let b = &mut self.boards[board as usize];
            if !b.alive {
                return Err(bad());
            }
            let meta = b.replicas.get(name).cloned().ok_or_else(bad)?;
            if b.sys.reconfiguring(meta.node) {
                return Err(bad());
            }
            service = meta.service;
            node = meta.node;
            b.dir.withdraw(now, name);
            b.sys.undeploy_service(meta.service);
            b.local_caps.remove(&meta.service.0);
            b.replicas.remove(name);
            b.republish.retain(|r| r.name != name);
        }
        let gw = self.cfg.gateway;
        for peer in &mut self.boards {
            if !peer.alive {
                continue;
            }
            if let Some(cap) = peer.remote_caps.remove(&(board, service.0)) {
                if peer.sys.tile_mut(gw).monitor.revoke_cap(cap).is_ok() {
                    self.caps_revoked += 1;
                }
            }
        }
        Ok(node)
    }

    /// Whether a board's gateway currently holds a client capability for
    /// `service` — i.e. a local replica is wired and invokable. The
    /// republish pass installs this cap only once the tile's bitstream has
    /// finished loading, so it doubles as the orchestrator's "replica is
    /// live" signal.
    pub fn has_local_cap(&self, board: u16, service: ServiceId) -> bool {
        self.boards[board as usize]
            .local_caps
            .contains_key(&service.0)
    }

    /// Quiesce elapsed: capture the source replica's state and put it on
    /// the fabric (transfer time scales with state size through the link's
    /// serialization model). Aborts — republishing the source binding — if
    /// the service cannot snapshot right now (mid-reconfiguration or not
    /// preemptible).
    fn drive_migration_snapshot(&mut self, sid: u32, now: Cycle) {
        let gw = self.cfg.gateway;
        let m = self.migrations.get_mut(&sid).expect("listed by caller");
        let b = &mut self.boards[m.src as usize];
        let home = b.sys.service_home(m.service);
        let state = home
            .and_then(|n| b.sys.tile_mut(n).accel.as_mut())
            .and_then(|a| a.save_state());
        let Some(state) = state else {
            if let Some(n) = home {
                let _ = b.dir.publish(now, &m.name, m.service, n);
            }
            self.migrations.remove(&sid);
            self.migrations_failed += 1;
            return;
        };
        b.sys.tile_mut(gw).monitor.tracer_mut().record(
            now,
            gw.0,
            EventKind::Remote {
                phase: "migrate-xfer",
                board: m.dst,
                tag: sid as u64,
            },
        );
        m.snapshot_at = now;
        m.state_bytes = state.len() as u64;
        m.phase = MigPhase::Transfer;
        b.sys.undeploy_service(m.service);
        b.local_caps.remove(&sid);
        b.replicas.remove(&m.name);
        let msg = ClusterMsg {
            src: m.src,
            dst: m.dst,
            body: Body::Migrate {
                service: sid,
                name: m.name.clone(),
                snapshot: state,
            },
        };
        self.fabric.send(&msg);
    }

    /// Kills a board: it stops ticking, its fabric links go down, its
    /// leases stop renewing. The rest of the cluster routes around it once
    /// timeouts raise its in-flight counts and lease expiry drops its
    /// directory entries.
    pub fn kill_board(&mut self, b: u16) {
        self.boards[b as usize].alive = false;
        self.fabric.set_link(b, None, false);
    }

    /// Cuts a link (board↔ToR in a star; the pair, or all of `a`'s links
    /// when `b` is `None`, in a mesh).
    pub fn cut_link(&mut self, a: u16, b: Option<u16>) {
        self.fabric.set_link(a, b, false);
    }

    /// Restores a previously cut link.
    pub fn restore_link(&mut self, a: u16, b: Option<u16>) {
        self.fabric.set_link(a, b, true);
    }

    /// Submits a request from a client attached at `origin` for the named
    /// service. The directory supplies live replicas, the balancer picks
    /// one, and the invocation goes out locally or over the fabric.
    /// Returns the chosen replica.
    pub fn submit(
        &mut self,
        origin: u16,
        name: &str,
        tag: u64,
        payload: Vec<u8>,
    ) -> Result<(u16, NodeId), SubmitError> {
        let now = self.now();
        if !self.boards[origin as usize].alive {
            return Err(SubmitError::OriginDead);
        }
        let candidates: Vec<(u16, NodeId, ServiceId)> = self.boards[origin as usize]
            .dir
            .lookup_all(now, name)
            .into_iter()
            .map(|e| (e.home, e.node, e.service))
            .collect();
        let keys: Vec<(u16, NodeId)> = candidates.iter().map(|c| (c.0, c.1)).collect();
        let Some(k) = self.balancer.pick(&keys) else {
            return Err(SubmitError::NoReplica);
        };
        let (tboard, tnode, service) = candidates[k];
        let gw = self.cfg.gateway;
        self.end_to_end.start(tag, now);
        if tboard == origin {
            let b = &mut self.boards[origin as usize];
            let cap = b
                .local_caps
                .get(&service.0)
                .copied()
                .ok_or(SubmitError::NoReplica)?;
            b.sys
                .tile_mut(gw)
                .monitor
                .send(cap, KIND_REQUEST, tag, TrafficClass::Request, payload, now)
                .map_err(|_| {
                    self.refused += 1;
                    SubmitError::Refused
                })?;
            self.local_submitted += 1;
        } else {
            let b = &mut self.boards[origin as usize];
            // Mint (or reuse) the remote capability for this (board,
            // service) and let the egress proxy check it like any send.
            let cap = match b.remote_caps.get(&(tboard, service.0)) {
                Some(c) => *c,
                None => {
                    let c = b
                        .sys
                        .tile_mut(gw)
                        .monitor
                        .install_cap(Capability::new(
                            CapKind::Remote {
                                board: tboard,
                                service,
                            },
                            Rights::SEND,
                        ))
                        .map_err(|_| SubmitError::Refused)?;
                    b.remote_caps.insert((tboard, service.0), c);
                    c
                }
            };
            if b.sys
                .tile(gw)
                .monitor
                .caps()
                .check(cap, Rights::SEND)
                .is_err()
            {
                self.refused += 1;
                return Err(SubmitError::Refused);
            }
            b.sys.tile_mut(gw).monitor.tracer_mut().record(
                now,
                gw.0,
                EventKind::Remote {
                    phase: "send",
                    board: tboard,
                    tag,
                },
            );
            self.fabric_out.start(tag, now);
            self.fabric.send(&ClusterMsg {
                src: origin,
                dst: tboard,
                body: Body::Invoke {
                    service: service.0,
                    tag,
                    payload,
                },
            });
            self.remote_submitted += 1;
        }
        self.balancer.started((tboard, tnode));
        self.pending.insert(
            tag,
            Pending {
                origin,
                target: (tboard, tnode),
                deadline: now + self.cfg.request_timeout,
            },
        );
        Ok((tboard, tnode))
    }

    /// Records a breaker-open transition observed at a board's client (the
    /// board id in the event is the origin itself: the breaker guards the
    /// whole fan-out, not one peer).
    pub fn note_breaker_open(&mut self, origin: u16) {
        let now = self.now();
        let gw = self.cfg.gateway;
        self.boards[origin as usize]
            .sys
            .tile_mut(gw)
            .monitor
            .tracer_mut()
            .record(
                now,
                gw.0,
                EventKind::Remote {
                    phase: "breaker-open",
                    board: origin,
                    tag: 0,
                },
            );
    }

    /// Finished requests since the last call, in completion order.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Whether finished requests await [`ClusterSystem::take_completions`].
    pub fn has_completions(&self) -> bool {
        !self.completions.is_empty()
    }

    /// Request traffic drained: nothing pending at the cluster level, no
    /// forwarded work awaiting a local reply, no live migration mid-flight
    /// (its snapshot may be on the wire or restoring while both boards look
    /// idle), every live board idle. Gossip deliberately does not count —
    /// it is a periodic background heartbeat and never "drains".
    pub fn quiescent(&self) -> bool {
        self.pending.is_empty()
            && self.migrations.is_empty()
            && self
                .boards
                .iter()
                .filter(|b| b.alive)
                .all(|b| b.ingress.is_empty() && b.sys.is_idle())
    }

    fn finish_request(&mut self, tag: u64, is_error: bool, now: Cycle) {
        match self.pending.remove(&tag) {
            Some(p) => {
                self.balancer.finished(p.target);
                if !is_error {
                    self.end_to_end.finish(tag, now);
                }
                self.completions.push(Completion {
                    origin: p.origin,
                    tag,
                    is_error,
                });
            }
            None => self.stale_replies += 1,
        }
    }

    /// Advances the whole cluster by one cycle.
    pub fn tick(&mut self) {
        self.ticks += 1;
        let now = Cycle(self.ticks);
        let gw = self.cfg.gateway;

        // 1. Boards advance in index order; dead boards stay frozen.
        for b in &mut self.boards {
            if b.alive {
                b.sys.tick();
            }
        }

        // 1b. Live migrations whose quiesce window elapsed take their
        //     snapshot: the source stops serving (tile decommissioned,
        //     spec and checkpoint dropped) and the state goes out over the
        //     fabric. Migrations whose source or destination died abort.
        if !self.migrations.is_empty() {
            let due: Vec<u32> = self
                .migrations
                .iter()
                .filter(|(_, m)| {
                    matches!(m.phase, MigPhase::Quiesce { until } if until <= now)
                        && self.boards[m.src as usize].alive
                        && self.boards[m.dst as usize].alive
                })
                .map(|(&s, _)| s)
                .collect();
            for sid in due {
                self.drive_migration_snapshot(sid, now);
            }
            let dead: Vec<u32> = self
                .migrations
                .iter()
                .filter(|(_, m)| {
                    !self.boards[m.src as usize].alive || !self.boards[m.dst as usize].alive
                })
                .map(|(&s, _)| s)
                .collect();
            for sid in dead {
                self.migrations.remove(&sid);
                self.migrations_failed += 1;
            }
        }

        // 2. Completed reconfigurations republish their directory entry.
        for bi in 0..self.boards.len() {
            if !self.boards[bi].alive {
                continue;
            }
            let done: Vec<usize> = self.boards[bi]
                .republish
                .iter()
                .enumerate()
                .filter(|(_, r)| self.boards[bi].sys.tile(r.meta.node).accel.is_some())
                .map(|(i, _)| i)
                .collect();
            for i in done.into_iter().rev() {
                let r = self.boards[bi].republish.remove(i);
                let b = &mut self.boards[bi];
                // Re-wire: the reset wiped the replica tile's reply caps;
                // attach_client reinstalls them and refreshes the
                // gateway's service cap.
                if let Ok(cap) = b.sys.attach_client(gw, r.meta.service) {
                    b.local_caps.insert(r.meta.service.0, cap);
                }
                let _ = b.dir.publish(now, &r.name, r.meta.service, r.meta.node);
            }
        }

        // 2b. Migrations finalize once the destination republished: the
        //     blackout window closes, and every live board's stale remote
        //     cap against the old home is proactively revoked (a fresh cap
        //     is minted against the new home on the next submit — clients
        //     never see a cap change, naming is late-bound).
        let finished: Vec<u32> = self
            .migrations
            .iter()
            .filter(|(_, m)| {
                m.phase == MigPhase::Restore
                    && self.boards[m.dst as usize]
                        .dir
                        .lookup_local(now, &m.name)
                        .is_some_and(|e| e.node == m.dst_node)
            })
            .map(|(&s, _)| s)
            .collect();
        for sid in finished {
            let m = self.migrations.remove(&sid).expect("listed above");
            self.boards[m.dst as usize]
                .sys
                .tile_mut(gw)
                .monitor
                .tracer_mut()
                .record(
                    now,
                    gw.0,
                    EventKind::Remote {
                        phase: "migrate-done",
                        board: m.src,
                        tag: sid as u64,
                    },
                );
            for b in &mut self.boards {
                if !b.alive {
                    continue;
                }
                if let Some(cap) = b.remote_caps.remove(&(m.src, sid)) {
                    if b.sys.tile_mut(gw).monitor.revoke_cap(cap).is_ok() {
                        self.caps_revoked += 1;
                    }
                }
            }
            self.migrations_done.push(MigrationOutcome {
                name: m.name,
                service: m.service,
                src: m.src,
                dst: m.dst,
                state_bytes: m.state_bytes,
                started_at: m.started_at,
                snapshot_at: m.snapshot_at,
                restored_at: now,
                warm: m.warm,
            });
        }

        // 3. Gossip round: renew leases, sweep expiries (revoking remote
        //    caps for entries that lapsed), push one snapshot round-robin.
        if self.ticks.is_multiple_of(self.cfg.gossip_interval) {
            let round = self.ticks / self.cfg.gossip_interval;
            let n = self.boards.len() as u16;
            for bi in 0..n {
                if !self.boards[bi as usize].alive {
                    continue;
                }
                let b = &mut self.boards[bi as usize];
                b.dir.renew_local(now);
                for dead in b.dir.sweep(now) {
                    if dead.home == bi {
                        continue;
                    }
                    if let Some(cap) = b.remote_caps.remove(&(dead.home, dead.service.0)) {
                        if b.sys.tile_mut(gw).monitor.revoke_cap(cap).is_ok() {
                            self.caps_revoked += 1;
                        }
                    }
                }
                if n > 1 {
                    let peers: Vec<u16> = (0..n).filter(|&p| p != bi).collect();
                    let partner = peers[(round as usize) % peers.len()];
                    let snapshot = self.boards[bi as usize].dir.snapshot();
                    self.fabric.send(&ClusterMsg {
                        src: bi,
                        dst: partner,
                        body: Body::Gossip { entries: snapshot },
                    });
                }
            }

            // Checkpoint replication piggybacks on the gossip cadence:
            // each board pushes any snapshot whose sequence advanced since
            // the last round to its ring successor, so a board kill can
            // recover warm from the peer's adopted copy
            // ([`ClusterSystem::recover_replica`]).
            if self.cfg.replicate_checkpoints && n > 1 {
                for bi in 0..n {
                    if !self.boards[bi as usize].alive {
                        continue;
                    }
                    let Some(peer) = (1..n)
                        .map(|d| (bi + d) % n)
                        .find(|&p| self.boards[p as usize].alive)
                    else {
                        continue;
                    };
                    let replicas: Vec<(String, u32)> = self.boards[bi as usize]
                        .replicas
                        .iter()
                        .map(|(name, meta)| (name.clone(), meta.service.0))
                        .collect();
                    for (name, sid) in replicas {
                        let Some(snap) = self.boards[bi as usize]
                            .sys
                            .checkpoint_store_mut()
                            .latest(sid)
                        else {
                            continue;
                        };
                        let seq = snap.seq;
                        if self
                            .replicated_seq
                            .get(&(bi, sid))
                            .is_some_and(|&sent| sent >= seq)
                        {
                            continue;
                        }
                        let snapshot = snap.encode();
                        self.replicated_seq.insert((bi, sid), seq);
                        self.fabric.send(&ClusterMsg {
                            src: bi,
                            dst: peer,
                            body: Body::Checkpoint {
                                service: sid,
                                name,
                                snapshot,
                            },
                        });
                    }
                }
            }
        }

        // 4. Fabric: deliveries and ARQ retransmission attribution.
        let (deliveries, retx) = self.fabric.step(now);
        for (src_board, n) in retx {
            if !self.boards[src_board as usize].alive {
                continue;
            }
            let tracer = self.boards[src_board as usize]
                .sys
                .tile_mut(gw)
                .monitor
                .tracer_mut();
            for _ in 0..n {
                tracer.record(
                    now,
                    gw.0,
                    EventKind::Remote {
                        phase: "retransmit",
                        board: src_board,
                        tag: 0,
                    },
                );
            }
        }
        for msg in deliveries {
            if !self.boards[msg.dst as usize].alive {
                self.dead_board_drops += 1;
                continue;
            }
            match msg.body {
                Body::Invoke {
                    service,
                    tag,
                    payload,
                } => {
                    self.fabric_out.finish(tag, now);
                    let b = &mut self.boards[msg.dst as usize];
                    let cap = b.local_caps.get(&service).copied();
                    let home = b.sys.service_home(ServiceId(service));
                    let forwarded = match (cap, home) {
                        (Some(cap), Some(_)) => {
                            let ltag = INGRESS_BIT | self.next_ingress;
                            self.next_ingress += 1;
                            match b.sys.tile_mut(gw).monitor.send(
                                cap,
                                KIND_REQUEST,
                                ltag,
                                TrafficClass::Request,
                                payload,
                                now,
                            ) {
                                Ok(()) => {
                                    b.ingress.insert(ltag, Ingress { src: msg.src, tag });
                                    self.on_board.start(tag, now);
                                    true
                                }
                                Err(_) => false,
                            }
                        }
                        _ => false,
                    };
                    if !forwarded {
                        self.fabric.send(&ClusterMsg {
                            src: msg.dst,
                            dst: msg.src,
                            body: Body::Reply {
                                tag,
                                is_error: true,
                                payload: vec![apiary_monitor::wire::err::NO_SUCH_SERVICE],
                            },
                        });
                    }
                }
                Body::Reply {
                    tag,
                    is_error,
                    payload: _,
                } => {
                    self.fabric_back.finish(tag, now);
                    self.boards[msg.dst as usize]
                        .sys
                        .tile_mut(gw)
                        .monitor
                        .tracer_mut()
                        .record(
                            now,
                            gw.0,
                            EventKind::Remote {
                                phase: "reply",
                                board: msg.src,
                                tag,
                            },
                        );
                    self.finish_request(tag, is_error, now);
                }
                Body::Gossip { entries } => {
                    self.boards[msg.dst as usize].dir.merge(&entries);
                }
                Body::Migrate {
                    service,
                    name: _,
                    snapshot,
                } => {
                    let Some(m) = self.migrations.get_mut(&service) else {
                        // Migration aborted while the snapshot was in
                        // flight; the state is lost with it.
                        continue;
                    };
                    let factory = m.factory.take().expect("consumed exactly once");
                    let mut accel = factory();
                    m.warm = accel.restore_state(&snapshot).is_ok();
                    if !m.warm {
                        // Never install a half-restored instance.
                        accel = factory();
                    }
                    let warm_bytes = if m.warm { snapshot.len() as u64 } else { 0 };
                    let b = &mut self.boards[msg.dst as usize];
                    match b.sys.reconfigure(
                        m.dst_node,
                        accel,
                        m.app,
                        m.policy,
                        m.bitstream_bytes + warm_bytes,
                    ) {
                        Ok(_) => {
                            b.sys.tile_mut(gw).monitor.tracer_mut().record(
                                now,
                                gw.0,
                                EventKind::Remote {
                                    phase: "migrate-restore",
                                    board: msg.src,
                                    tag: service as u64,
                                },
                            );
                            b.sys.adopt_service(
                                m.service,
                                m.dst_node,
                                m.app,
                                m.policy,
                                m.bitstream_bytes,
                                factory,
                            );
                            let meta = ReplicaMeta {
                                service: m.service,
                                node: m.dst_node,
                                app: m.app,
                                policy: m.policy,
                                bitstream_bytes: m.bitstream_bytes,
                            };
                            b.replicas.insert(m.name.clone(), meta.clone());
                            b.republish.push(Republish {
                                name: m.name.clone(),
                                meta,
                            });
                            m.phase = MigPhase::Restore;
                        }
                        Err(_) => {
                            self.migrations.remove(&service);
                            self.migrations_failed += 1;
                        }
                    }
                }
                Body::Checkpoint {
                    service,
                    name: _,
                    snapshot,
                } => {
                    if let Ok(snap) = Snapshot::decode(&snapshot) {
                        if self.boards[msg.dst as usize]
                            .sys
                            .checkpoint_store_mut()
                            .adopt(service, snap)
                        {
                            self.checkpoints_replicated += 1;
                        }
                    }
                }
            }
        }

        // 5. Drain gateway inboxes: replies to local submits complete
        //    directly; replies to forwarded ingress go back over the
        //    fabric.
        for bi in 0..self.boards.len() {
            if !self.boards[bi].alive {
                continue;
            }
            while let Some(d) = self.boards[bi].sys.tile_mut(gw).monitor.recv() {
                let is_error = d.msg.kind == KIND_ERROR;
                if d.msg.tag & INGRESS_BIT != 0 {
                    if let Some(ing) = self.boards[bi].ingress.remove(&d.msg.tag) {
                        self.on_board.finish(ing.tag, now);
                        self.fabric_back.start(ing.tag, now);
                        self.fabric.send(&ClusterMsg {
                            src: bi as u16,
                            dst: ing.src,
                            body: Body::Reply {
                                tag: ing.tag,
                                is_error,
                                payload: d.msg.payload.to_vec(),
                            },
                        });
                    }
                } else {
                    self.finish_request(d.msg.tag, is_error, now);
                }
            }
        }

        // 6. Cluster-level timeouts feed the client retry path.
        let expired: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(&t, _)| t)
            .collect();
        for tag in expired {
            let p = self.pending.remove(&tag).expect("listed above");
            self.balancer.finished(p.target);
            self.timeouts += 1;
            self.completions.push(Completion {
                origin: p.origin,
                tag,
                is_error: true,
            });
        }
    }

    /// The next cycle, no later than `horizon`, at which anything in the
    /// cluster can happen: a board's kernel phases come due (including all
    /// in-flight NoC traffic), a fabric link has work, a gossip round
    /// fires, or a cluster-level request timeout expires. Every cycle
    /// strictly before the returned one is provably a no-op for the whole
    /// machine, so the event clock may skip it.
    fn next_due(&self, horizon: Cycle) -> Cycle {
        let now = self.now();
        let next = now.saturating_add(1);
        let mut due = horizon.max(next);
        for b in &self.boards {
            if b.alive {
                due = due.min(b.sys.next_event_due(horizon));
            }
        }
        due = due.min(self.fabric.next_activity(next));
        let g = self.cfg.gossip_interval;
        due = due.min(Cycle((self.ticks / g + 1) * g));
        if let Some(d) = self.pending.values().map(|p| p.deadline).min() {
            due = due.min(d.max(next));
        }
        for m in self.migrations.values() {
            if let MigPhase::Quiesce { until } = m.phase {
                due = due.min(until.max(next));
            }
        }
        due.max(next)
    }

    /// One event-clock step: fast-forward every live board (and the shared
    /// tick counter) through the provably quiet cycles, then run the next
    /// eventful cycle through the ordinary dense [`ClusterSystem::tick`].
    /// Always advances at least one cycle and never beyond `horizon`.
    fn event_step(&mut self, horizon: Cycle) {
        let due = self.next_due(horizon);
        if due.0 > self.ticks + 1 {
            let resume = Cycle(due.0 - 1);
            for b in &mut self.boards {
                if b.alive {
                    b.sys.skip_to(resume);
                }
            }
            self.ticks = resume.0;
        }
        self.tick();
    }

    /// Advances time by one scheduling step: one cycle under the dense
    /// clock, or up to the next cluster-wide wakeup (never beyond
    /// `horizon`) under the event clock. Experiment drivers interleave
    /// their own client wakeups with the cluster's exactly like the
    /// single-board `System::advance_toward`.
    pub fn advance_toward(&mut self, horizon: Cycle) {
        if self.now() >= horizon {
            return;
        }
        if clock_mode() == ClockMode::Dense {
            self.tick();
        } else {
            self.event_step(horizon);
        }
    }

    /// Ticks `n` cycles (jumping between wakeups under the event clock;
    /// both clocks end on the same cycle with bit-identical state).
    pub fn tick_n(&mut self, n: u64) {
        if clock_mode() == ClockMode::Dense {
            for _ in 0..n {
                self.tick();
            }
            return;
        }
        let end = Cycle(self.ticks.saturating_add(n));
        while self.now() < end {
            self.event_step(end);
        }
    }
}

/// One external client: a [`RequestGen`] (workload, retry policy, circuit
/// breaker) attached at a board's network ingress.
pub struct ClusterClient {
    /// The load generator (owns stats: issued, completed, errors, retries,
    /// shed, RTT histogram).
    pub gen: RequestGen,
    /// Board this client's traffic enters at.
    pub origin: u16,
    /// Service it invokes.
    pub service_name: String,
    /// Submits refused because no live replica was visible.
    pub no_replica: u64,
    last_breaker: Option<BreakerState>,
}

impl ClusterClient {
    /// Creates a client with retries and a breaker armed (the end-to-end
    /// resilience path E17 exercises).
    pub fn new(
        client_id: u32,
        origin: u16,
        service_name: &str,
        payload_bytes: usize,
        workload: Workload,
        seed: u64,
    ) -> ClusterClient {
        ClusterClient {
            gen: RequestGen::new(client_id, 0, payload_bytes, workload, seed)
                .with_retry(RetryPolicy::default())
                .with_breaker(BreakerConfig::default()),
            origin,
            service_name: service_name.to_string(),
            no_replica: 0,
            last_breaker: None,
        }
    }

    /// Whether `tag` belongs to this client's generator.
    pub fn owns(&self, tag: u64) -> bool {
        (tag >> 32) as u32 == self.gen.client_id
    }
}

/// One driver step for a set of clients: deliver completions, then issue
/// new arrivals and due retries, recording breaker-open transitions.
/// Call once per [`ClusterSystem::tick`].
pub fn drive_clients(cluster: &mut ClusterSystem, clients: &mut [ClusterClient]) {
    let now = cluster.now();
    for c in cluster.take_completions() {
        if let Some(cl) = clients.iter_mut().find(|cl| cl.owns(c.tag)) {
            cl.gen.complete(c.tag, now, c.is_error);
        }
    }
    for cl in clients.iter_mut() {
        for tag in cl.gen.poll(now) {
            let payload = vec![0u8; cl.gen.payload_bytes];
            match cluster.submit(cl.origin, &cl.service_name, tag, payload) {
                Ok(_) => {}
                Err(e) => {
                    if e == SubmitError::NoReplica {
                        cl.no_replica += 1;
                    }
                    cl.gen.complete(tag, now, true);
                }
            }
        }
        let state = cl.gen.breaker_state();
        if state == Some(BreakerState::Open) && cl.last_breaker != Some(BreakerState::Open) {
            cluster.note_breaker_open(cl.origin);
        }
        cl.last_breaker = state;
    }
}

/// Runs the cluster for up to `cycles` cycles with `clients` attached,
/// stopping early when `stop` returns true. Under the dense clock this is
/// the classic loop: tick, drive, check. Under the event clock the cluster
/// jumps between wakeups and the clients are driven at every cycle where
/// they can act — a completion is pending, or a client timed event
/// (arrival, retry, breaker cooldown) is due. Skipped cycles are cycles
/// where `drive_clients` would have been a pure no-op, and `stop` is
/// re-checked after every executed cycle, so both clocks stop on the same
/// cycle with bit-identical client stats.
///
/// Returns `true` if `stop` fired before the cycle budget ran out.
pub fn run_clients(
    cluster: &mut ClusterSystem,
    clients: &mut [ClusterClient],
    cycles: u64,
    mut stop: impl FnMut(&ClusterSystem, &[ClusterClient]) -> bool,
) -> bool {
    let end = Cycle(cluster.now().as_u64().saturating_add(cycles));
    if clock_mode() == ClockMode::Dense {
        while cluster.now() < end {
            cluster.tick();
            drive_clients(cluster, clients);
            if stop(cluster, clients) {
                return true;
            }
        }
        return false;
    }
    while cluster.now() < end {
        // Next cycle any client does timed work. Client state only changes
        // inside drive_clients, so this stays valid until the next drive.
        let next = Cycle(cluster.now().as_u64().saturating_add(1));
        let mut due = end;
        for cl in clients.iter() {
            if let Some(t) = cl.gen.next_timed_event() {
                due = due.min(t.max(next));
            }
        }
        loop {
            cluster.advance_toward(due);
            if cluster.now() >= due || cluster.has_completions() {
                break;
            }
            // `stop` may flip on any executed cycle (e.g. the last board
            // draining), not only on client-drive cycles. Client timed
            // events are not due yet, so driving here would be a no-op —
            // checking without driving matches the dense ordering.
            if stop(cluster, clients) {
                return true;
            }
        }
        drive_clients(cluster, clients);
        if stop(cluster, clients) {
            return true;
        }
    }
    false
}
