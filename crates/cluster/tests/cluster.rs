//! End-to-end cluster tests: remote invocation, gossip convergence,
//! determinism, board-kill failover, link cuts, and reconfiguration churn.

use apiary_accel::apps::echo::echo;
use apiary_cap::ServiceId;
use apiary_cluster::{drive_clients, ClusterClient, ClusterConfig, ClusterSystem};
use apiary_core::{AppId, FaultPolicy};
use apiary_net::Workload;
use apiary_noc::NodeId;

const KV: ServiceId = ServiceId(40);
const REPLICA_NODE: NodeId = NodeId(5);
const BITSTREAM: u64 = 4096; // 1024 cycles over the default 4 B/cycle ICAP.

fn cluster(boards: u16) -> ClusterSystem {
    ClusterSystem::new(ClusterConfig {
        boards,
        ..ClusterConfig::default()
    })
}

fn deploy_echo(c: &mut ClusterSystem, board: u16, cost: u64) {
    let displaced = c
        .deploy_replica(
            board,
            "kv",
            KV,
            REPLICA_NODE,
            AppId(1),
            FaultPolicy::FailStop,
            BITSTREAM,
            Box::new(move || Box::new(echo(cost))),
        )
        .expect("deploy");
    assert_eq!(displaced, None, "nothing displaced on a fresh board");
}

fn client(id: u32, origin: u16, mean_interarrival: f64) -> ClusterClient {
    ClusterClient::new(
        id,
        origin,
        "kv",
        64,
        Workload::Open { mean_interarrival },
        1_000 + id as u64,
    )
}

fn run(c: &mut ClusterSystem, clients: &mut [ClusterClient], cycles: u64) {
    for _ in 0..cycles {
        c.tick();
        drive_clients(c, clients);
    }
}

#[test]
fn remote_invocation_round_trip() {
    let mut c = cluster(2);
    // The only replica lives on board 1; the client enters at board 0, so
    // every request crosses the fabric.
    deploy_echo(&mut c, 1, 20);
    let mut clients = [client(1, 0, 400.0)];
    run(&mut c, &mut clients, 30_000);

    let stats = &clients[0].gen.stats;
    assert!(stats.completed > 20, "completions: {stats:?}");
    assert!(c.remote_submitted > 20);
    assert_eq!(c.local_submitted, 0, "no local replica exists");
    // Span events at the origin gateway: a send and a reply per request.
    assert!(c.remote_trace_count(0) >= 2 * (stats.completed - stats.errors));
    // Per-hop breakdown: both fabric hops cost at least the link
    // propagation delay; on-board time is measured separately.
    assert!(c.fabric_out.histogram().count() > 0);
    assert!(c.fabric_out.histogram().min() >= 200);
    assert!(c.fabric_back.histogram().min() >= 200);
    assert!(c.on_board.histogram().count() > 0);
    assert!(c.end_to_end.histogram().count() > 0);
    let e2e_p50 = c.end_to_end.histogram().p50();
    assert!(
        e2e_p50 >= c.fabric_out.histogram().p50() + c.fabric_back.histogram().p50(),
        "end-to-end covers both hops"
    );
    // One remote capability was minted at the origin for (board 1, kv).
    assert_eq!(c.remote_cap_count(0), 1);
}

#[test]
fn gossip_converges_to_every_replica() {
    let mut c = cluster(4);
    for b in 0..4 {
        deploy_echo(&mut c, b, 20);
    }
    // No traffic, just gossip rounds.
    c.tick_n(8_000);
    for b in 0..4 {
        let live = c.directory(b).lookup_all(c.now(), "kv");
        assert_eq!(live.len(), 4, "board {b} sees all replicas");
    }
}

fn fingerprint(boards: u16, cycles: u64) -> String {
    let mut c = cluster(boards);
    for b in 0..boards {
        deploy_echo(&mut c, b, 60);
    }
    let mut clients: Vec<ClusterClient> = (0..boards)
        .map(|b| client(b as u32 + 1, b, 150.0))
        .collect();
    run(&mut c, &mut clients, cycles);
    let mut s = String::new();
    use std::fmt::Write;
    let _ = write!(
        s,
        "local={} remote={} timeouts={} stale={} refused={} revoked={} picks={} e2e=({},{},{})",
        c.local_submitted,
        c.remote_submitted,
        c.timeouts,
        c.stale_replies,
        c.refused,
        c.caps_revoked,
        c.balancer().picks,
        c.end_to_end.histogram().count(),
        c.end_to_end.histogram().p50(),
        c.end_to_end.histogram().p99(),
    );
    for b in 0..boards {
        let _ = write!(s, " t{}={}", b, c.remote_trace_count(b));
    }
    for cl in &clients {
        let _ = write!(
            s,
            " c{}=({},{},{},{})",
            cl.gen.client_id,
            cl.gen.stats.issued,
            cl.gen.stats.completed,
            cl.gen.stats.errors,
            cl.gen.stats.retries,
        );
    }
    s
}

#[test]
fn same_seed_replays_byte_identically() {
    let a = fingerprint(3, 12_000);
    let b = fingerprint(3, 12_000);
    assert_eq!(a, b);
}

#[test]
fn board_kill_fails_over_via_directory() {
    let mut c = cluster(4);
    for b in 0..4 {
        deploy_echo(&mut c, b, 60);
    }
    // Clients on the three boards that will survive.
    let mut clients: Vec<ClusterClient> = (0..3).map(|b| client(b as u32 + 1, b, 200.0)).collect();
    run(&mut c, &mut clients, 10_000);
    let before: u64 = clients.iter().map(|cl| cl.gen.stats.completed).sum();
    assert!(before > 0);

    c.kill_board(3);
    run(&mut c, &mut clients, 30_000);

    // Lease expiry removed the dead board everywhere and revoked any
    // remote caps minted against it.
    for b in 0..3 {
        let live = c.directory(b).lookup_all(c.now(), "kv");
        assert_eq!(live.len(), 3, "board {b} dropped the dead replica");
        assert!(live.iter().all(|e| e.home != 3));
    }
    assert!(c.caps_revoked > 0, "dead board's remote caps were revoked");
    // Traffic kept completing after the kill: requests that timed out
    // against board 3 were retried onto live replicas.
    let after: u64 = clients.iter().map(|cl| cl.gen.stats.completed).sum();
    assert!(
        after > before + 50,
        "completions kept flowing: {before} -> {after}"
    );
    assert!(
        c.timeouts > 0,
        "requests in flight to the dead board timed out"
    );
}

#[test]
fn transient_link_cut_retransmits_and_recovers() {
    let mut c = cluster(2);
    deploy_echo(&mut c, 1, 20);
    let mut clients = [client(1, 0, 300.0)];
    run(&mut c, &mut clients, 6_000);

    c.cut_link(1, None);
    run(&mut c, &mut clients, 3_000);
    c.restore_link(1, None);
    run(&mut c, &mut clients, 20_000);

    assert!(
        c.fabric().stats().retransmissions > 0,
        "ARQ resent frames lost to the cut"
    );
    assert!(c.fabric().stats().cut_drops > 0);
    let stats = &clients[0].gen.stats;
    assert!(
        stats.completed > stats.errors,
        "most traffic survived the cut: {stats:?}"
    );
}

#[test]
fn reconfigure_withdraws_then_republishes() {
    let mut c = cluster(2);
    deploy_echo(&mut c, 1, 20);
    c.tick_n(2_000); // let gossip spread the binding
    assert_eq!(c.directory(0).lookup_all(c.now(), "kv").len(), 1);

    c.reconfigure_replica(1, "kv", Box::new(|| Box::new(echo(10))), BITSTREAM)
        .expect("replica is known");
    // Withdrawn at the home board immediately…
    assert!(c.directory(1).lookup_local(c.now(), "kv").is_none());
    // …and at peers once gossip carries the tombstone.
    c.tick_n(1_000);
    assert!(
        c.directory(0).lookup_all(c.now(), "kv").is_empty(),
        "tombstone propagated"
    );
    // Republished (new version, fresh lease) once the bitstream lands.
    c.tick_n(4_000);
    assert_eq!(c.directory(1).lookup_all(c.now(), "kv").len(), 1);
    assert_eq!(c.directory(0).lookup_all(c.now(), "kv").len(), 1);
}

#[test]
fn churn_during_remote_invocation_recovers() {
    // Regression: reconfiguring the tile under live remote traffic must
    // not wedge the cluster — in-flight invocations error or time out,
    // clients retry, and completions resume after republish.
    let mut c = cluster(2);
    deploy_echo(&mut c, 1, 20);
    c.tick_n(2_000); // gossip warm-up before clients arrive
    let mut clients = [client(1, 0, 250.0)];
    run(&mut c, &mut clients, 8_000);
    let before = clients[0].gen.stats.completed;
    assert!(before > 0);

    c.reconfigure_replica(1, "kv", Box::new(|| Box::new(echo(10))), BITSTREAM)
        .expect("replica is known");
    run(&mut c, &mut clients, 40_000);

    let stats = &clients[0].gen.stats;
    assert!(
        stats.completed > before + 30,
        "service resumed after churn: {before} -> {}",
        stats.completed
    );
    assert!(
        stats.errors > 0 || c.timeouts > 0 || clients[0].no_replica > 0,
        "the churn window was actually observed"
    );
    // The machine drains: no stuck pending requests or fabric frames.
    clients[0].gen.max_requests = 0;
    for _ in 0..30_000 {
        c.tick();
        drive_clients(&mut c, &mut clients);
        if c.quiescent() {
            break;
        }
    }
    assert!(c.quiescent(), "cluster drains after churn");
}

// ---------------------------------------------------------------------
// Checkpoint/restore plane: live migration and warm board-kill recovery.
// ---------------------------------------------------------------------

use apiary_accel::apps::kv::{kv_store, KvStoreAccel};

const TENANT: u64 = 7;

fn deploy_kv(c: &mut ClusterSystem, board: u16) {
    c.deploy_replica(
        board,
        "kv",
        KV,
        REPLICA_NODE,
        AppId(1),
        FaultPolicy::FailStop,
        BITSTREAM,
        Box::new(|| Box::new(kv_store())),
    )
    .expect("deploy kv");
}

fn preload_kv(c: &mut ClusterSystem, board: u16, entries: usize) {
    let accel = c
        .board_mut(board)
        .accel_as_mut::<KvStoreAccel>(REPLICA_NODE)
        .expect("kv replica installed");
    for i in 0..entries {
        let key = format!("key-{i:04}");
        let val = format!("value-{i:04}-{}", "x".repeat(24));
        accel
            .service_mut()
            .insert(TENANT, key.as_bytes(), val.as_bytes());
    }
}

fn kv_retention(c: &ClusterSystem, board: u16, entries: usize) -> usize {
    let accel = c
        .board(board)
        .accel_as::<KvStoreAccel>(REPLICA_NODE)
        .expect("kv replica installed");
    (0..entries)
        .filter(|i| {
            let key = format!("key-{i:04}");
            let val = format!("value-{i:04}-{}", "x".repeat(24));
            accel.service().get(TENANT, key.as_bytes()) == Some(val.as_bytes())
        })
        .count()
}

#[test]
fn live_migration_moves_state_without_cap_churn() {
    let mut c = cluster(2);
    deploy_kv(&mut c, 0);
    preload_kv(&mut c, 0, 50);
    c.tick_n(2_000); // gossip spreads the binding

    // A client on board 1 invokes remotely, minting a remote cap for
    // (board 0, kv).
    let mut clients = [client(1, 1, 300.0)];
    run(&mut c, &mut clients, 6_000);
    let before = clients[0].gen.stats.completed;
    assert!(before > 0, "traffic flowed pre-migration");
    assert_eq!(c.remote_cap_count(1), 1);

    c.migrate_replica("kv", 0, 1, REPLICA_NODE, Box::new(|| Box::new(kv_store())))
        .expect("replica known and both boards alive");
    run(&mut c, &mut clients, 20_000);

    let outcomes = c.migration_outcomes();
    assert_eq!(outcomes.len(), 1, "migration completed");
    let o = &outcomes[0];
    assert!(o.warm, "state restored from the snapshot");
    assert!(o.state_bytes > 0);
    assert!(o.blackout() > 0);
    assert_eq!((o.src, o.dst), (0, 1));
    assert_eq!(c.migrations_in_flight(), 0);
    assert_eq!(c.migrations_failed, 0);

    // Every preloaded entry survived the move.
    assert_eq!(kv_retention(&c, 1, 50), 50, "full retention across boards");
    // The stale remote cap was revoked at finalize; traffic resumed
    // against the new home without the client re-attaching.
    assert_eq!(c.remote_cap_count(1), 0, "old remote cap revoked");
    let after = clients[0].gen.stats.completed;
    assert!(
        after > before,
        "service answers post-migration: {before} -> {after}"
    );
    // The source board no longer serves the name.
    assert!(c.board(0).service_home(KV).is_none());
    assert_eq!(c.board(1).service_home(KV), Some(REPLICA_NODE));
}

#[test]
fn migration_blackout_scales_with_state_size() {
    let blackout = |entries: usize| -> u64 {
        let mut c = cluster(2);
        deploy_kv(&mut c, 0);
        preload_kv(&mut c, 0, entries);
        c.tick_n(2_000);
        c.migrate_replica("kv", 0, 1, REPLICA_NODE, Box::new(|| Box::new(kv_store())))
            .expect("migration starts");
        c.tick_n(30_000);
        let outcomes = c.migration_outcomes();
        assert_eq!(outcomes.len(), 1, "{entries}-entry migration completed");
        assert!(outcomes[0].warm);
        outcomes[0].blackout()
    };
    let small = blackout(10);
    let large = blackout(400);
    assert!(
        large > small,
        "blackout grows with state: {small} vs {large}"
    );
}

#[test]
fn replicated_checkpoint_recovers_warm_after_board_kill() {
    let mut cfg = ClusterConfig {
        boards: 2,
        replicate_checkpoints: true,
        ..ClusterConfig::default()
    };
    cfg.system.supervisor.enabled = true;
    cfg.system.supervisor.checkpoint_interval = 1_000;
    let mut c = ClusterSystem::new(cfg);
    deploy_kv(&mut c, 0);
    preload_kv(&mut c, 0, 40);
    // Several checkpoint intervals and gossip rounds: the newest snapshot
    // replicates to board 1.
    c.tick_n(6_000);
    assert!(c.checkpoints_replicated > 0, "snapshot reached the peer");
    assert!(!c.board(1).checkpoint_store().is_empty());

    c.kill_board(0);
    let warm = c
        .recover_replica(
            1,
            "kv",
            KV,
            REPLICA_NODE,
            AppId(1),
            FaultPolicy::FailStop,
            BITSTREAM,
            Box::new(|| Box::new(kv_store())),
        )
        .expect("spare tile on the peer");
    assert!(warm, "recovery restored the replicated checkpoint");
    c.tick_n(10_000); // bitstream + state through the ICAP, republish

    assert_eq!(
        kv_retention(&c, 1, 40),
        40,
        "board kill recovered warm elsewhere with full retention"
    );
    assert_eq!(c.directory(1).lookup_all(c.now(), "kv").len(), 1);
    // Without replication the peer holds nothing and recovery is cold.
    let mut cold = cluster(2);
    deploy_kv(&mut cold, 0);
    preload_kv(&mut cold, 0, 40);
    cold.tick_n(6_000);
    cold.kill_board(0);
    let warm = cold
        .recover_replica(
            1,
            "kv",
            KV,
            REPLICA_NODE,
            AppId(1),
            FaultPolicy::FailStop,
            BITSTREAM,
            Box::new(|| Box::new(kv_store())),
        )
        .expect("spare tile on the peer");
    assert!(!warm, "no replicated checkpoint: cold restart");
    cold.tick_n(10_000);
    assert_eq!(kv_retention(&cold, 1, 40), 0, "cold restart lost the data");
}
