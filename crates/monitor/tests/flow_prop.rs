//! Property test for the flow-verdict cache (batched monitor verdicts).
//!
//! Two monitors are driven through the same interleaving of sends,
//! revocations, derivations, service rebinds, fail-stops and resets — one
//! with the flow cache on (batched verdicts), one with it off (per-message
//! checks). The contract under test: **verdicts are identical
//! message-for-message**. Every send must return the same `Result`, and
//! every message that reaches the NoC must carry the same destination,
//! badge, kind, tag and payload, in the same order. Only timing may differ
//! (cache hits skip the check pipeline), so timestamps are excluded from
//! the comparison.

use apiary_cap::{CapKind, CapRef, Capability, EndpointId, Rights, ServiceId};
use apiary_monitor::{Monitor, MonitorConfig};
use apiary_noc::{Noc, NocConfig, NodeId, TrafficClass};
use apiary_sim::Cycle;
use proptest::prelude::*;

/// One step of the interleaving. Capability handles are referenced by
/// index into the (identical) handle list both monitors build up.
#[derive(Debug, Clone)]
enum Op {
    /// Send a small payload through handle `cap % handles.len()`.
    Send { cap: usize, len: usize, tag: u64 },
    /// Revoke handle `cap % handles.len()`.
    Revoke { cap: usize },
    /// Derive a SEND-only child of handle `cap % handles.len()`.
    Derive { cap: usize },
    /// Install a fresh endpoint capability to `node % 16`.
    Install { node: u16 },
    /// Rebind service 9 to `node % 16` (the supervisor-rewiring path).
    Bind { node: u16 },
    /// Fail-stop the tile.
    FailStop,
    /// Reset (reconfigure) the tile: all authority revoked.
    Reset,
}

fn arb_send() -> impl Strategy<Value = Op> {
    (any::<usize>(), 0usize..64, any::<u64>()).prop_map(|(cap, len, tag)| Op::Send {
        cap,
        len,
        tag,
    })
}

fn arb_op() -> impl Strategy<Value = Op> {
    // The vendored `prop_oneof!` is unweighted; repeating the send arm
    // biases runs toward send-heavy interleavings (where the cache is hot).
    prop_oneof![
        arb_send(),
        arb_send(),
        arb_send(),
        arb_send(),
        any::<usize>().prop_map(|cap| Op::Revoke { cap }),
        any::<usize>().prop_map(|cap| Op::Derive { cap }),
        any::<u16>().prop_map(|node| Op::Install { node }),
        any::<u16>().prop_map(|node| Op::Bind { node }),
        Just(Op::FailStop),
        Just(Op::Reset),
    ]
}

/// A monitor + NoC pair plus the handle list the ops index into.
struct Rig {
    monitor: Monitor,
    noc: Noc,
    handles: Vec<CapRef>,
}

impl Rig {
    fn new(flow_cache: bool) -> Rig {
        let cfg = MonitorConfig {
            flow_cache,
            ..MonitorConfig::default()
        };
        let mut monitor = Monitor::new(NodeId(0), cfg);
        let mut handles = Vec::new();
        for dst in 1u32..=3 {
            handles.push(
                monitor
                    .install_cap(Capability::badged(
                        CapKind::Endpoint(EndpointId(dst)),
                        Rights::SEND | Rights::GRANT,
                        u64::from(dst) << 8,
                    ))
                    .expect("space"),
            );
        }
        handles.push(
            monitor
                .install_cap(Capability::new(
                    CapKind::Service(ServiceId(9)),
                    Rights::SEND | Rights::GRANT,
                ))
                .expect("space"),
        );
        monitor.bind_service(9, NodeId(2));
        Rig {
            monitor,
            noc: Noc::new(NocConfig::soft(4, 4)),
            handles,
        }
    }

    /// Applies one op at `now`; returns the send verdict when the op was a
    /// send. Pumps the outbox afterwards at `now + 1` so both rigs drain
    /// fully before the next (possibly destructive) op.
    fn apply(&mut self, op: &Op, now: Cycle) -> Option<Result<(), apiary_monitor::SendError>> {
        let pick = |i: usize, n: usize| i % n.max(1);
        let verdict = match op {
            Op::Send { cap, len, tag } => {
                if self.handles.is_empty() {
                    return None;
                }
                let cap = self.handles[pick(*cap, self.handles.len())];
                Some(
                    self.monitor
                        .send(cap, 1, *tag, TrafficClass::Request, vec![0xAB; *len], now),
                )
            }
            Op::Revoke { cap } => {
                if !self.handles.is_empty() {
                    let cap = self.handles[pick(*cap, self.handles.len())];
                    let _ = self.monitor.revoke_cap(cap);
                }
                None
            }
            Op::Derive { cap } => {
                if !self.handles.is_empty() {
                    let cap = self.handles[pick(*cap, self.handles.len())];
                    if let Ok(child) = self.monitor.derive_cap(cap, Rights::SEND, None) {
                        self.handles.push(child);
                    }
                }
                None
            }
            Op::Install { node } => {
                if let Ok(r) = self.monitor.install_cap(Capability::new(
                    CapKind::Endpoint(EndpointId(u32::from(node % 16))),
                    Rights::SEND | Rights::GRANT,
                )) {
                    self.handles.push(r);
                }
                None
            }
            Op::Bind { node } => {
                self.monitor.bind_service(9, NodeId(node % 16));
                None
            }
            Op::FailStop => {
                self.monitor.fail_stop(now);
                None
            }
            Op::Reset => {
                self.monitor.reset(now);
                // Old handles are dead either way; keep indexing stable.
                None
            }
        };
        // Drain at now + check_cycles so cached (ready = now) and uncached
        // (ready = now + 1) messages are both eligible — equivalence is
        // about *what* is sent, not when.
        self.monitor.pump_out(&mut self.noc, now + 1);
        let _ = self.noc.run_until_quiescent(100_000);
        verdict
    }

    /// Everything the NoC delivered, with timing stripped.
    fn delivered(&mut self) -> Vec<(u16, u16, u16, u64, u64, Vec<u8>)> {
        let mut out = Vec::new();
        for n in 0..16u16 {
            while let Some(d) = self.noc.poll_eject(NodeId(n)) {
                out.push((
                    n,
                    d.msg.src.0,
                    d.msg.kind,
                    d.msg.tag,
                    d.msg.badge,
                    d.msg.payload.to_vec(),
                ));
            }
        }
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batched (flow-cached) verdicts equal per-message verdicts for any
    /// interleaving of sends with revokes, rebinds and reconfigurations.
    #[test]
    fn batched_verdicts_match_per_message(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut cached = Rig::new(true);
        let mut plain = Rig::new(false);

        let mut now = Cycle(0);
        for op in &ops {
            now += 3;
            let a = cached.apply(op, now);
            let b = plain.apply(op, now);
            prop_assert_eq!(a, b, "send verdict diverged on {:?}", op);
            prop_assert_eq!(cached.handles.len(), plain.handles.len());
        }

        // Same messages on the wire, same order, same contents.
        prop_assert_eq!(cached.delivered(), plain.delivered());

        // And the policy counters agree (flow_hits/misses excluded — they
        // are the *only* intended difference).
        let (a, b) = (cached.monitor.stats(), plain.monitor.stats());
        prop_assert_eq!(a.sent, b.sent);
        prop_assert_eq!(a.denied, b.denied);
        prop_assert_eq!(a.backpressured, b.backpressured);
        prop_assert_eq!(a.rate_limited, b.rate_limited);
        prop_assert_eq!(a.dropped, b.dropped);
    }
}
