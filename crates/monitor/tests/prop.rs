//! Property-based tests for the monitor's policy mechanisms.

use apiary_monitor::TokenBucket;
use apiary_sim::Cycle;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The token bucket never over-grants: across any request sequence,
    /// the bytes admitted by time T are at most `burst + rate * T`.
    #[test]
    fn bucket_never_overgrants(
        rate_milli in 1u64..5_000,
        burst in 1u64..10_000,
        reqs in prop::collection::vec((0u64..2_000, 1u64..4_096), 1..200),
    ) {
        let mut tb = TokenBucket::new(rate_milli, burst);
        let mut now = Cycle::ZERO;
        let mut granted_bytes: u64 = 0;
        for (gap, bytes) in reqs {
            now += gap;
            if tb.try_consume(bytes, now) {
                granted_bytes += bytes;
            }
            // Invariant at every step: milli-byte budget respected.
            let budget = burst * 1000 + now.as_u64() * rate_milli;
            prop_assert!(
                granted_bytes * 1000 <= budget,
                "granted {granted_bytes} B by cycle {now}, budget {budget} mB"
            );
        }
    }

    /// The bucket is work-conserving at quiescence: after waiting long
    /// enough to refill the full burst, a burst-sized request is always
    /// admitted.
    #[test]
    fn bucket_recovers_after_idle(
        rate_milli in 100u64..5_000,
        burst in 1u64..4_096,
        drain in prop::collection::vec(1u64..4_096, 0..20),
    ) {
        let mut tb = TokenBucket::new(rate_milli, burst);
        let mut now = Cycle::ZERO;
        for bytes in drain {
            let _ = tb.try_consume(bytes, now);
            now += 1;
        }
        // Wait out a full refill (ceil(burst_mB / rate) cycles).
        let wait = (burst * 1000).div_ceil(rate_milli) + 1;
        now += wait;
        prop_assert!(tb.try_consume(burst, now));
    }

    /// Denial accounting is exact: every probe either grants or counts as
    /// a denial.
    #[test]
    fn denials_are_counted(
        reqs in prop::collection::vec((0u64..50, 1u64..512), 1..100),
    ) {
        let mut tb = TokenBucket::new(500, 256);
        let mut now = Cycle::ZERO;
        let mut grants = 0u64;
        let total = reqs.len() as u64;
        for (gap, bytes) in reqs {
            now += gap;
            if tb.try_consume(bytes, now) {
                grants += 1;
            }
        }
        prop_assert_eq!(tb.denials(), total - grants);
    }
}
