//! The Apiary wire protocol: message `kind` words and error codes.
//!
//! These constants give meaning to [`apiary_noc::Message::kind`]. They live
//! here because the monitor must mint some of them itself (error replies on
//! behalf of fail-stopped tiles); the kernel and services build on the same
//! vocabulary.

/// Application-defined request (the common case for accelerator traffic).
pub const KIND_REQUEST: u16 = 0x0001;
/// Application-defined response.
pub const KIND_RESPONSE: u16 = 0x0002;
/// Memory read request (to a memory-service tile). The monitor has already
/// bounds-checked and translated the address.
pub const KIND_MEM_READ: u16 = 0x0010;
/// Memory write request.
pub const KIND_MEM_WRITE: u16 = 0x0011;
/// Memory operation completion (data for reads, ack for writes).
pub const KIND_MEM_REPLY: u16 = 0x0012;
/// Memory allocation request (to the memory service's control plane).
pub const KIND_MEM_ALLOC: u16 = 0x0013;
/// Memory release request.
pub const KIND_MEM_FREE: u16 = 0x0014;
/// Service-registry lookup request.
pub const KIND_LOOKUP: u16 = 0x0020;
/// Service-registry lookup response.
pub const KIND_LOOKUP_REPLY: u16 = 0x0021;
/// Network service: transmit a frame to the external network.
pub const KIND_NET_TX: u16 = 0x0030;
/// Network service: a frame arrived from the external network.
pub const KIND_NET_RX: u16 = 0x0031;
/// Error reply minted by a monitor or service.
pub const KIND_ERROR: u16 = 0x00FF;

/// Error codes carried in the first payload byte of a [`KIND_ERROR`] reply.
pub mod err {
    /// The destination tile fail-stopped (§4.4's defined error behaviour).
    pub const TARGET_FAILED: u8 = 1;
    /// The destination rejected the message (no matching handler).
    pub const REJECTED: u8 = 2;
    /// A memory operation failed its bounds/rights check.
    pub const MEM_FAULT: u8 = 3;
    /// A service lookup failed.
    pub const NO_SUCH_SERVICE: u8 = 4;
    /// The destination's queues overflowed.
    pub const OVERLOAD: u8 = 5;
}

/// Renders a kind word for traces.
pub fn kind_name(kind: u16) -> &'static str {
    match kind {
        KIND_REQUEST => "request",
        KIND_RESPONSE => "response",
        KIND_MEM_READ => "mem-read",
        KIND_MEM_WRITE => "mem-write",
        KIND_MEM_REPLY => "mem-reply",
        KIND_MEM_ALLOC => "mem-alloc",
        KIND_MEM_FREE => "mem-free",
        KIND_LOOKUP => "lookup",
        KIND_LOOKUP_REPLY => "lookup-reply",
        KIND_NET_TX => "net-tx",
        KIND_NET_RX => "net-rx",
        KIND_ERROR => "error",
        _ => "user",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            KIND_REQUEST,
            KIND_RESPONSE,
            KIND_MEM_READ,
            KIND_MEM_WRITE,
            KIND_MEM_REPLY,
            KIND_MEM_ALLOC,
            KIND_MEM_FREE,
            KIND_LOOKUP,
            KIND_LOOKUP_REPLY,
            KIND_NET_TX,
            KIND_NET_RX,
            KIND_ERROR,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in kinds.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn names_resolve() {
        assert_eq!(kind_name(KIND_MEM_READ), "mem-read");
        assert_eq!(kind_name(0x7777), "user");
    }
}
