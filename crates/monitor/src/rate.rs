//! Token-bucket rate limiting.

use apiary_sim::Cycle;

/// A token bucket metering bytes per cycle, in integer milli-byte units to
/// stay exact (and synthesizable: a counter, an adder and a comparator).
///
/// # Examples
///
/// ```
/// use apiary_monitor::TokenBucket;
/// use apiary_sim::Cycle;
///
/// // 2 bytes/cycle sustained, 64-byte bursts.
/// let mut tb = TokenBucket::new(2_000, 64);
/// assert!(tb.try_consume(64, Cycle(0)), "burst allowed");
/// assert!(!tb.try_consume(64, Cycle(1)), "bucket drained");
/// assert!(tb.try_consume(64, Cycle(32)), "refilled at 2 B/cyc");
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Refill rate in milli-bytes per cycle (1000 = 1 B/cycle).
    rate_millibytes: u64,
    /// Capacity in milli-bytes.
    burst_millibytes: u64,
    tokens_millibytes: u64,
    last_update: Cycle,
    /// Consumptions denied.
    denials: u64,
}

impl TokenBucket {
    /// Creates a bucket with the given sustained rate (milli-bytes/cycle)
    /// and burst size (bytes). The bucket starts full.
    pub fn new(rate_millibytes_per_cycle: u64, burst_bytes: u64) -> TokenBucket {
        TokenBucket {
            rate_millibytes: rate_millibytes_per_cycle,
            burst_millibytes: burst_bytes * 1000,
            tokens_millibytes: burst_bytes * 1000,
            last_update: Cycle::ZERO,
            denials: 0,
        }
    }

    /// An effectively unlimited bucket (rate limiting disabled).
    pub fn unlimited() -> TokenBucket {
        TokenBucket::new(u64::MAX / 2, u64::MAX / 2000)
    }

    fn refill(&mut self, now: Cycle) {
        let dt = now - self.last_update;
        self.last_update = self.last_update.max(now);
        let add = dt.saturating_mul(self.rate_millibytes);
        self.tokens_millibytes = self
            .tokens_millibytes
            .saturating_add(add)
            .min(self.burst_millibytes);
    }

    /// Attempts to consume `bytes` at time `now`; returns whether allowed.
    pub fn try_consume(&mut self, bytes: u64, now: Cycle) -> bool {
        self.refill(now);
        let need = bytes.saturating_mul(1000);
        if self.tokens_millibytes >= need {
            self.tokens_millibytes -= need;
            true
        } else {
            self.denials += 1;
            false
        }
    }

    /// Tokens currently available, in whole bytes.
    pub fn available_bytes(&self) -> u64 {
        self.tokens_millibytes / 1000
    }

    /// Consumptions denied so far.
    pub fn denials(&self) -> u64 {
        self.denials
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_sustained() {
        let mut tb = TokenBucket::new(1_000, 10); // 1 B/cyc, 10 B burst.
        assert!(tb.try_consume(10, Cycle(0)));
        assert!(!tb.try_consume(1, Cycle(0)));
        // After 5 cycles, 5 bytes accrue.
        assert!(tb.try_consume(5, Cycle(5)));
        assert!(!tb.try_consume(1, Cycle(5)));
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut tb = TokenBucket::new(1_000, 10);
        tb.try_consume(0, Cycle(1_000_000));
        assert_eq!(tb.available_bytes(), 10);
    }

    #[test]
    fn fractional_rates_accumulate() {
        // 0.25 B/cycle: 250 milli-bytes.
        let mut tb = TokenBucket::new(250, 100);
        assert!(tb.try_consume(100, Cycle(0)));
        // 4 cycles buys exactly 1 byte.
        assert!(!tb.try_consume(1, Cycle(3)));
        assert!(tb.try_consume(1, Cycle(4)));
    }

    #[test]
    fn denials_counted() {
        let mut tb = TokenBucket::new(0, 1);
        assert!(tb.try_consume(1, Cycle(0)));
        assert!(!tb.try_consume(1, Cycle(100)));
        assert!(!tb.try_consume(1, Cycle(200)));
        assert_eq!(tb.denials(), 2);
    }

    #[test]
    fn unlimited_never_denies() {
        let mut tb = TokenBucket::unlimited();
        for i in 0..1000 {
            assert!(tb.try_consume(1 << 20, Cycle(i)));
        }
        assert_eq!(tb.denials(), 0);
    }

    #[test]
    fn time_going_backwards_is_harmless() {
        let mut tb = TokenBucket::new(1_000, 4);
        assert!(tb.try_consume(4, Cycle(10)));
        // An out-of-order probe at an earlier time must not panic or mint
        // negative time tokens.
        assert!(!tb.try_consume(4, Cycle(5)));
        assert!(tb.try_consume(4, Cycle(14)));
    }
}
