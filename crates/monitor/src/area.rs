//! The monitor's hardware cost model (the paper's open question §6.1).
//!
//! "What is the overhead of the per-tile monitor?" — the answer decides how
//! many tiles an Apiary deployment can afford, and therefore how fine the
//! granularity of composition can be. This module prices a monitor as a sum
//! of per-feature costs, with constants anchored to published sizes of
//! comparable FPGA blocks:
//!
//! - an AXI firewall / protocol checker class block is ~1–2 kLUT,
//! - a CAM/BRAM-backed lookup table costs ~30 LUT + control per entry when
//!   done in logic, or one BRAM36 when wider than ~64 entries,
//! - a token bucket is a counter, an adder and a comparator (~100 LUT),
//! - trace capture is counters plus an optional BRAM ring.
//!
//! Absolute numbers are estimates — the experiment's claim is about
//! *scaling*: monitor area must stay a small, tile-count-proportional
//! fraction of the device.

use apiary_resources::Area;

/// Which monitor features are instantiated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorFeatures {
    /// Capability-table slots.
    pub cap_slots: u32,
    /// Service name-table entries.
    pub name_slots: u32,
    /// Egress token-bucket rate limiter.
    pub rate_limiter: bool,
    /// Segment bounds-check unit on the memory path.
    pub mem_protection: bool,
    /// Trace ring buffer (BRAM) in addition to always-on counters.
    pub trace_ring: bool,
    /// Outbox + inbox message buffering depth (messages).
    pub queue_depth: u32,
}

impl Default for MonitorFeatures {
    fn default() -> Self {
        MonitorFeatures {
            cap_slots: 32,
            name_slots: 16,
            rate_limiter: true,
            mem_protection: true,
            trace_ring: false,
            queue_depth: 16,
        }
    }
}

impl MonitorFeatures {
    /// The smallest useful monitor: interposition and capability checks
    /// only.
    pub fn minimal() -> MonitorFeatures {
        MonitorFeatures {
            cap_slots: 16,
            name_slots: 8,
            rate_limiter: false,
            mem_protection: false,
            trace_ring: false,
            queue_depth: 4,
        }
    }

    /// Everything on, sized generously.
    pub fn full() -> MonitorFeatures {
        MonitorFeatures {
            cap_slots: 64,
            name_slots: 32,
            rate_limiter: true,
            mem_protection: true,
            trace_ring: true,
            queue_depth: 32,
        }
    }
}

/// Per-feature area constants (LUT/FF/BRAM). Public so experiments can
/// report sensitivity to the constants themselves.
#[derive(Debug, Clone, Copy)]
pub struct MonitorAreaModel {
    /// Fixed cost: NoC-side protocol FSMs, header stamping, mux/demux.
    pub base: Area,
    /// Per capability-table slot (stored in LUTRAM below 64 entries).
    pub per_cap_slot: Area,
    /// Per name-table entry.
    pub per_name_slot: Area,
    /// The token bucket.
    pub rate_limiter: Area,
    /// Base/bounds comparator pair plus the request rewriter.
    pub mem_protection: Area,
    /// Trace ring controller (the ring itself is BRAM).
    pub trace_ring: Area,
    /// Per message of queue depth (flit-width registers/LUTRAM).
    pub per_queue_msg: Area,
}

impl Default for MonitorAreaModel {
    fn default() -> Self {
        MonitorAreaModel {
            base: Area {
                luts: 900,
                ffs: 1_100,
                bram36: 0,
                dsps: 0,
            },
            per_cap_slot: Area::logic(24, 18),
            per_name_slot: Area::logic(12, 8),
            rate_limiter: Area::logic(110, 90),
            mem_protection: Area::logic(260, 140),
            trace_ring: Area {
                luts: 150,
                ffs: 120,
                bram36: 2,
                dsps: 0,
            },
            per_queue_msg: Area::logic(20, 64),
        }
    }
}

impl MonitorAreaModel {
    /// Prices a monitor with the given features.
    pub fn area(&self, f: &MonitorFeatures) -> Area {
        let mut a = self.base;
        a += self.per_cap_slot * f.cap_slots as u64;
        a += self.per_name_slot * f.name_slots as u64;
        if f.rate_limiter {
            a += self.rate_limiter;
        }
        if f.mem_protection {
            a += self.mem_protection;
        }
        if f.trace_ring {
            a += self.trace_ring;
        }
        a += self.per_queue_msg * (2 * f.queue_depth as u64);
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apiary_resources::{FloorPlanner, Part};

    #[test]
    fn default_monitor_is_a_few_kilolut() {
        let a = MonitorAreaModel::default().area(&MonitorFeatures::default());
        assert!(
            (1_500..6_000).contains(&a.luts),
            "default monitor should be firewall-class, got {} LUTs",
            a.luts
        );
    }

    #[test]
    fn minimal_less_than_default_less_than_full() {
        let m = MonitorAreaModel::default();
        let min = m.area(&MonitorFeatures::minimal());
        let def = m.area(&MonitorFeatures::default());
        let max = m.area(&MonitorFeatures::full());
        assert!(min.luts < def.luts);
        assert!(def.luts < max.luts);
    }

    #[test]
    fn area_scales_linearly_in_cap_slots() {
        let m = MonitorAreaModel::default();
        let f16 = MonitorFeatures {
            cap_slots: 16,
            ..MonitorFeatures::default()
        };
        let f64 = MonitorFeatures {
            cap_slots: 64,
            ..MonitorFeatures::default()
        };
        let delta = m.area(&f64).luts - m.area(&f16).luts;
        assert_eq!(delta, 48 * m.per_cap_slot.luts);
    }

    #[test]
    fn sixty_four_monitors_fit_a_vu9p_with_headroom() {
        // The scaling claim: even 64 full-featured monitors plus a soft NoC
        // leave the majority of a VU9P for accelerators.
        let monitor = MonitorAreaModel::default().area(&MonitorFeatures::default());
        let part = Part::by_number("VU9P").expect("catalogued");
        let plan = FloorPlanner {
            tiles: 64,
            monitor,
            router: FloorPlanner::SOFT_ROUTER,
            io_shell: FloorPlanner::IO_SHELL,
        }
        .plan(part)
        .expect("fits");
        assert!(
            plan.framework_fraction() < 0.30,
            "framework fraction {}",
            plan.framework_fraction()
        );
    }
}
