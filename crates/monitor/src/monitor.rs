//! The per-tile monitor: interposition on every message.

use crate::rate::TokenBucket;
use crate::wire;
use apiary_cap::{CapError, CapKind, CapRef, CapTable, Capability, Rights};
use apiary_mem::{AccessKind, ProtectError, SegmentChecker};
use apiary_noc::{Delivered, Message, Noc, NodeId, TrafficClass};
use apiary_sim::{Cycle, FxHashMap, Payload};
use apiary_trace::{EventKind, Tracer};
use core::fmt;
use std::collections::{HashMap, VecDeque};

/// Monitor sizing and policy.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Capability-table slots.
    pub cap_slots: usize,
    /// Outbound queue depth, in messages.
    pub outbox_depth: usize,
    /// Inbound queue depth, in messages.
    pub inbox_depth: usize,
    /// Pipeline cycles charged per outbound message for the capability
    /// check and header stamping (1 in a realistic design).
    pub check_cycles: u64,
    /// Egress rate limit as (milli-bytes per cycle, burst bytes), or `None`
    /// for unlimited.
    pub rate: Option<(u64, u64)>,
    /// Largest accepted payload, in bytes.
    pub max_payload: usize,
    /// Trace ring size (0 = counters only).
    pub trace_depth: usize,
    /// Watchdog: if the oldest delivered message sits unconsumed in the
    /// inbox for this many cycles, the monitor reports the accelerator as
    /// hung (§4.4's "the process may never yield"). `None` disables it.
    pub watchdog_cycles: Option<u64>,
    /// Batched flow verdicts: cache the capability check per
    /// `(cap, destination)` flow so a burst of in-order sends through the
    /// same capability pays the `check_cycles` pipeline once, not per
    /// message. The cache is invalidated wholesale on any operation that
    /// can change a verdict (revoke, service rebind, fail-stop, reset), so
    /// verdicts are message-for-message identical to per-message checking.
    /// `false` restores the exact legacy per-message timing.
    pub flow_cache: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            cap_slots: 32,
            outbox_depth: 16,
            inbox_depth: 64,
            check_cycles: 1,
            rate: None,
            max_payload: 4096,
            trace_depth: 0,
            watchdog_cycles: None,
            flow_cache: true,
        }
    }
}

/// The tile's lifecycle state as the monitor sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TileState {
    /// Normal operation.
    #[default]
    Running,
    /// Fail-stopped (§4.4): the accelerator faulted; traffic is sealed off
    /// and correspondents receive error replies.
    FailStopped,
}

/// Why the monitor refused to send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// Capability missing, stale, or lacking rights.
    Cap(CapError),
    /// Memory access outside the segment or wrong direction.
    Protect(ProtectError),
    /// The egress token bucket is empty.
    RateLimited,
    /// The outbound queue is full (NoC backpressure reached the tile).
    Backpressure,
    /// The tile is fail-stopped; nothing may leave.
    FailStopped,
    /// A service capability names a service with no registered node.
    UnknownService,
    /// Payload exceeds the configured maximum.
    PayloadTooLarge,
    /// An endpoint capability names an id outside the NoC's node-id space.
    /// Surfaced as an explicit error instead of silently truncating the id
    /// (endpoint 65537 must not alias node 1).
    InvalidEndpoint,
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::Cap(e) => write!(f, "capability: {e}"),
            SendError::Protect(e) => write!(f, "memory protection: {e}"),
            SendError::RateLimited => write!(f, "rate limited"),
            SendError::Backpressure => write!(f, "outbound queue full"),
            SendError::FailStopped => write!(f, "tile fail-stopped"),
            SendError::UnknownService => write!(f, "unknown service"),
            SendError::PayloadTooLarge => write!(f, "payload too large"),
            SendError::InvalidEndpoint => write!(f, "endpoint id out of node range"),
        }
    }
}

impl std::error::Error for SendError {}

impl From<CapError> for SendError {
    fn from(e: CapError) -> SendError {
        SendError::Cap(e)
    }
}

impl From<ProtectError> for SendError {
    fn from(e: ProtectError) -> SendError {
        SendError::Protect(e)
    }
}

/// Monitor activity counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonitorStats {
    /// Messages accepted from the accelerator and queued out.
    pub sent: u64,
    /// Messages delivered into the tile's inbox.
    pub received: u64,
    /// Outbound messages denied on capability grounds.
    pub denied: u64,
    /// Outbound messages denied by the rate limiter.
    pub rate_limited: u64,
    /// Outbound attempts refused because the outbox was full.
    pub backpressured: u64,
    /// Error replies minted on behalf of a failed/overloaded tile.
    pub nacks_sent: u64,
    /// Inbound messages dropped (inbox overflow on error replies).
    pub dropped: u64,
    /// Sends whose capability verdict came from the flow cache (the
    /// `check_cycles` pipeline charge was skipped).
    pub flow_hits: u64,
    /// Sends that took the full capability check and primed the flow cache.
    pub flow_misses: u64,
}

/// The trusted per-tile monitor.
///
/// One instance fronts every tile. The kernel configures it (capabilities,
/// service names, policy); the accelerator can only call the message-path
/// methods ([`Monitor::send`], [`Monitor::send_mem`], [`Monitor::recv`]).
pub struct Monitor {
    node: NodeId,
    cfg: MonitorConfig,
    caps: CapTable,
    names: HashMap<u32, NodeId>,
    bucket: TokenBucket,
    checker: SegmentChecker,
    state: TileState,
    outbox: VecDeque<(Cycle, Message)>,
    inbox: VecDeque<Delivered>,
    stats: MonitorStats,
    tracer: Tracer,
    /// Batched flow verdicts: `(cap index, cap generation)` -> resolved
    /// destination and badge. Populated on a successful full check, cleared
    /// by every operation that can change a verdict (see
    /// [`MonitorConfig::flow_cache`]). Never iterated, so hash-map order
    /// cannot leak into simulation results.
    flows: FxHashMap<(u16, u16), FlowEntry>,
}

/// A cached capability verdict for one `(cap, destination)` flow.
#[derive(Debug, Clone, Copy)]
struct FlowEntry {
    dst: NodeId,
    badge: u64,
}

impl Monitor {
    /// Creates a monitor for the tile at `node`.
    pub fn new(node: NodeId, cfg: MonitorConfig) -> Monitor {
        Monitor {
            node,
            caps: CapTable::new(cfg.cap_slots),
            names: HashMap::new(),
            bucket: match cfg.rate {
                Some((rate, burst)) => TokenBucket::new(rate, burst),
                None => TokenBucket::unlimited(),
            },
            checker: SegmentChecker::new(1),
            state: TileState::Running,
            outbox: VecDeque::new(),
            inbox: VecDeque::new(),
            stats: MonitorStats::default(),
            tracer: Tracer::new(cfg.trace_depth),
            flows: FxHashMap::default(),
            cfg,
        }
    }

    /// This tile's NoC node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TileState {
        self.state
    }

    /// Counters.
    pub fn stats(&self) -> &MonitorStats {
        &self.stats
    }

    /// The per-tile trace (ring + counters).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable trace access (for enabling/clearing).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    // ------------------------------------------------------------------
    // Kernel-facing (trusted) operations.
    // ------------------------------------------------------------------

    /// Installs a root capability (kernel authority).
    ///
    /// # Errors
    ///
    /// [`CapError::TableFull`] when the table is exhausted.
    pub fn install_cap(&mut self, cap: Capability) -> Result<CapRef, CapError> {
        self.caps.insert_root(cap)
    }

    /// Direct access to the capability table (kernel and tests).
    pub fn caps(&self) -> &CapTable {
        &self.caps
    }

    /// Derives a narrowed capability on behalf of the tile.
    ///
    /// # Errors
    ///
    /// Propagates [`CapError`] from the table.
    pub fn derive_cap(
        &mut self,
        parent: CapRef,
        rights: Rights,
        narrow: Option<CapKind>,
    ) -> Result<CapRef, CapError> {
        self.caps.derive(parent, rights, narrow)
    }

    /// Revokes a capability subtree.
    ///
    /// # Errors
    ///
    /// Propagates [`CapError`] from the table.
    pub fn revoke_cap(&mut self, r: CapRef) -> Result<(), CapError> {
        // Revocation kills a whole subtree of capabilities; invalidate every
        // batched flow verdict so the next send re-checks from scratch.
        self.flows.clear();
        self.caps.revoke(r)
    }

    /// Binds a logical service id to a physical node in this tile's name
    /// table (§4.3).
    ///
    /// Rebinding changes where service capabilities resolve, so this is a
    /// flow-cache invalidation point: the supervisor's reconfiguration
    /// rewiring and the registry's publish/withdraw path both land here.
    pub fn bind_service(&mut self, service: u32, node: NodeId) {
        self.flows.clear();
        self.names.insert(service, node);
    }

    /// Finds a live SEND-bearing endpoint capability for `node`, if the
    /// kernel granted one. This is how replies stay inside the capability
    /// discipline: a service can only answer clients it was explicitly
    /// connected to (§4.2 — IPC must be established).
    pub fn find_endpoint_cap(&self, node: NodeId) -> Option<CapRef> {
        // Compare in the wider u32 domain: endpoint 65537 must not match
        // node 1 (the old `e.0 as u16` truncation aliased them).
        self.caps.iter_live().find_map(|(r, c)| match c.kind {
            CapKind::Endpoint(e) if e.0 == u32::from(node.0) && c.rights.contains(Rights::SEND) => {
                Some(r)
            }
            _ => None,
        })
    }

    /// Fail-stops the tile: drains all queued traffic and seals it (§4.4).
    /// In-flight NoC traffic addressed here will be answered with errors as
    /// it arrives.
    pub fn fail_stop(&mut self, now: Cycle) {
        self.state = TileState::FailStopped;
        self.outbox.clear();
        self.inbox.clear();
        self.flows.clear();
        self.tracer.record(now, self.node.0, EventKind::FailStop);
    }

    /// Resets the tile after reconfiguration: clears queues, capabilities,
    /// names, and returns to [`TileState::Running`].
    pub fn reset(&mut self, now: Cycle) {
        self.state = TileState::Running;
        self.outbox.clear();
        self.inbox.clear();
        self.caps = CapTable::new(self.cfg.cap_slots);
        self.names.clear();
        self.flows.clear();
        self.tracer.record(now, self.node.0, EventKind::Reconfig);
    }

    // ------------------------------------------------------------------
    // Accelerator-facing (untrusted) operations.
    // ------------------------------------------------------------------

    /// Resolves the destination node a capability names.
    fn resolve_dst(&self, cap: &Capability) -> Result<NodeId, SendError> {
        match cap.kind {
            // Endpoint ids are u32 but NoC node ids are u16; an id that
            // does not fit is a malformed capability, not an alias of
            // whatever node the low 16 bits happen to spell.
            CapKind::Endpoint(e) => u16::try_from(e.0)
                .map(NodeId)
                .map_err(|_| SendError::InvalidEndpoint),
            CapKind::Service(s) => self
                .names
                .get(&s.0)
                .copied()
                .ok_or(SendError::UnknownService),
            _ => Err(SendError::Cap(CapError::InsufficientRights {
                needed: Rights::SEND,
            })),
        }
    }

    /// Sends a message through `cap`.
    ///
    /// The monitor checks the capability, meters the bytes, stamps the true
    /// source and the capability badge, and queues the message for
    /// injection. The `kind`/`tag` words are application-level.
    ///
    /// With [`MonitorConfig::flow_cache`] enabled (the default), the first
    /// send through a capability takes the full check and pays the
    /// `check_cycles` pipeline; subsequent sends through the same live
    /// capability reuse the cached verdict and inject without the pipeline
    /// charge. Any revoke/rebind/fail-stop/reset invalidates the cache, so
    /// the *verdicts* are identical either way — only the timing of
    /// repeat-flow traffic improves.
    ///
    /// # Errors
    ///
    /// [`SendError`] describing the refusal; refusals have no side effects
    /// beyond counters and trace events.
    pub fn send(
        &mut self,
        cap: CapRef,
        kind: u16,
        tag: u64,
        class: TrafficClass,
        payload: impl Into<Payload>,
        now: Cycle,
    ) -> Result<(), SendError> {
        let payload: Payload = payload.into();
        if self.state == TileState::FailStopped {
            return Err(SendError::FailStopped);
        }
        if payload.len() > self.cfg.max_payload {
            return Err(SendError::PayloadTooLarge);
        }
        let flow_key = (cap.index, cap.generation);
        let cached = if self.cfg.flow_cache {
            self.flows.get(&flow_key).copied()
        } else {
            None
        };
        let (dst, badge, ready) = match cached {
            // Cache hit: the capability was checked when the flow was
            // primed and nothing has invalidated it since, so the verdict
            // stands. Skip the table walk and the pipeline charge.
            Some(entry) => {
                self.stats.flow_hits += 1;
                (entry.dst, entry.badge, now)
            }
            None => {
                let capability = match self.caps.check(cap, Rights::SEND) {
                    Ok(c) => *c,
                    Err(e) => {
                        self.stats.denied += 1;
                        self.tracer.record(
                            now,
                            self.node.0,
                            EventKind::SendDenied { dst: u16::MAX },
                        );
                        return Err(e.into());
                    }
                };
                let dst = match self.resolve_dst(&capability) {
                    Ok(d) => d,
                    Err(e) => {
                        self.stats.denied += 1;
                        self.tracer.record(
                            now,
                            self.node.0,
                            EventKind::SendDenied { dst: u16::MAX },
                        );
                        return Err(e);
                    }
                };
                if self.cfg.flow_cache {
                    self.stats.flow_misses += 1;
                    self.flows.insert(
                        flow_key,
                        FlowEntry {
                            dst,
                            badge: capability.badge,
                        },
                    );
                }
                (dst, capability.badge, now + self.cfg.check_cycles)
            }
        };
        if self.outbox.len() >= self.cfg.outbox_depth {
            self.stats.backpressured += 1;
            return Err(SendError::Backpressure);
        }
        let bytes = payload.len() as u64 + 16;
        if !self.bucket.try_consume(bytes, now) {
            self.stats.rate_limited += 1;
            self.tracer
                .record(now, self.node.0, EventKind::RateLimited { dst: dst.0 });
            return Err(SendError::RateLimited);
        }
        let mut msg = Message::new(self.node, dst, class, payload);
        msg.kind = kind;
        msg.tag = tag;
        msg.badge = badge;
        self.tracer.record(
            now,
            self.node.0,
            EventKind::MsgSend {
                dst: dst.0,
                kind,
                tag,
                bytes: msg.payload.len() as u64,
            },
        );
        self.stats.sent += 1;
        self.outbox.push_back((ready, msg));
        Ok(())
    }

    /// Sends a memory access: bounds-checks `(offset, len)` against the
    /// segment capability `mem_cap`, translates to a physical address, and
    /// sends the request to the memory service through `service_cap`.
    ///
    /// Write data rides in `data`; reads pass an empty slice. The request
    /// payload encodes `[phys_addr: u64][len: u64][data...]` — the memory
    /// tile trusts these fields because only monitors can mint them.
    ///
    /// # Errors
    ///
    /// [`SendError`], including [`SendError::Protect`] for bounds/rights
    /// failures (the deny happens *before* anything enters the network).
    #[allow(clippy::too_many_arguments)]
    pub fn send_mem(
        &mut self,
        mem_cap: CapRef,
        service_cap: CapRef,
        access: AccessKind,
        offset: u64,
        len: u64,
        data: &[u8],
        tag: u64,
        now: Cycle,
    ) -> Result<(), SendError> {
        if self.state == TileState::FailStopped {
            return Err(SendError::FailStopped);
        }
        let phys = match self.checker.check(&self.caps, mem_cap, access, offset, len) {
            Ok(p) => p,
            Err(e) => {
                self.stats.denied += 1;
                self.tracer
                    .record(now, self.node.0, EventKind::SendDenied { dst: u16::MAX });
                return Err(e.into());
            }
        };
        let kind = match access {
            AccessKind::Read => wire::KIND_MEM_READ,
            AccessKind::Write => wire::KIND_MEM_WRITE,
        };
        let payload = wire_mem::encode(phys, len, data);
        let class = if data.len() > 256 {
            TrafficClass::Bulk
        } else {
            TrafficClass::Request
        };
        self.send(service_cap, kind, tag, class, payload, now)
    }

    /// Takes the next delivered message, if any.
    pub fn recv(&mut self) -> Option<Delivered> {
        self.inbox.pop_front()
    }

    /// Messages waiting in the inbox.
    pub fn inbox_len(&self) -> usize {
        self.inbox.len()
    }

    /// Messages waiting to enter the NoC.
    pub fn outbox_len(&self) -> usize {
        self.outbox.len()
    }

    /// Returns `true` if the watchdog is armed and the accelerator has
    /// left its oldest delivery unconsumed beyond the configured window.
    /// The kernel polls this and applies the tile's fault policy.
    pub fn hang_detected(&self, now: Cycle) -> bool {
        let Some(window) = self.cfg.watchdog_cycles else {
            return false;
        };
        if self.state != TileState::Running {
            return false;
        }
        self.inbox
            .front()
            .is_some_and(|d| now - d.delivered_at > window)
    }

    /// The first cycle at which [`Monitor::hang_detected`] would report the
    /// current oldest delivery as hung, or `None` when no hang is brewing
    /// (watchdog disarmed, tile not running, or inbox empty). The event
    /// clock uses this to schedule a watchdog wakeup instead of polling
    /// every cycle; consuming the delivery invalidates the deadline, which
    /// is fine — waking on a stale deadline is merely spurious.
    pub fn hang_deadline(&self) -> Option<Cycle> {
        let window = self.cfg.watchdog_cycles?;
        if self.state != TileState::Running {
            return None;
        }
        self.inbox
            .front()
            .map(|d| d.delivered_at.saturating_add(window).saturating_add(1))
    }

    // ------------------------------------------------------------------
    // Data-path pumping, driven by the kernel once per cycle.
    // ------------------------------------------------------------------

    /// When the head of the outbox becomes eligible to inject, if anything
    /// is queued. The outbox is head-of-line FIFO, so the event clock only
    /// needs the front entry's ready time to schedule the next
    /// [`Monitor::pump_out`] that can make progress.
    pub fn outbox_next_ready(&self) -> Option<Cycle> {
        self.outbox.front().map(|(ready, _)| *ready)
    }

    /// Moves ready outbound messages into the NoC (stops on backpressure).
    pub fn pump_out(&mut self, noc: &mut Noc, now: Cycle) {
        while let Some((ready, head)) = self.outbox.front() {
            if *ready > now {
                break;
            }
            // Reserve injection space *before* popping so the message is
            // moved into the NoC rather than cloned speculatively (the old
            // peek-then-clone copied every payload once per pump attempt).
            if noc.inject_space(self.node, head.class) == 0 {
                break;
            }
            let (_, msg) = self.outbox.pop_front().expect("peeked");
            if noc.try_inject(self.node, msg).is_err() {
                // Space was reserved, so the only remaining failures are an
                // unreachable or invalid destination — neither heals by
                // waiting; drop instead of wedging the outbox behind it.
                self.stats.dropped += 1;
            }
        }
    }

    /// Accepts deliveries from the NoC into the inbox; fail-stopped tiles
    /// answer with error replies instead (§4.4).
    pub fn pump_in(&mut self, noc: &mut Noc, now: Cycle) {
        while let Some(d) = noc.poll_eject(self.node) {
            self.accept(d, now);
        }
    }

    fn accept(&mut self, d: Delivered, now: Cycle) {
        match self.state {
            TileState::FailStopped => {
                self.nack(&d.msg, wire::err::TARGET_FAILED, now);
            }
            TileState::Running => {
                if self.inbox.len() >= self.cfg.inbox_depth {
                    self.nack(&d.msg, wire::err::OVERLOAD, now);
                    return;
                }
                self.tracer.record(
                    now,
                    self.node.0,
                    EventKind::MsgRecv {
                        src: d.msg.src.0,
                        kind: d.msg.kind,
                        tag: d.msg.tag,
                        bytes: d.msg.payload.len() as u64,
                    },
                );
                self.stats.received += 1;
                self.inbox.push_back(d);
            }
        }
    }

    /// Mints an error reply with monitor authority (no capability needed —
    /// the monitor is trusted). Never replies to an error, so two failed
    /// tiles cannot ping-pong.
    fn nack(&mut self, original: &Message, code: u8, now: Cycle) {
        if original.kind == wire::KIND_ERROR {
            self.stats.dropped += 1;
            return;
        }
        let mut reply = Message::new(self.node, original.src, TrafficClass::Control, vec![code]);
        reply.kind = wire::KIND_ERROR;
        reply.tag = original.tag;
        self.stats.nacks_sent += 1;
        self.outbox.push_back((now, reply));
    }
}

/// Encoding of memory request payloads.
pub mod wire_mem {
    /// Encodes `[addr][len][data...]`.
    pub fn encode(addr: u64, len: u64, data: &[u8]) -> Vec<u8> {
        let mut p = Vec::with_capacity(16 + data.len());
        p.extend_from_slice(&addr.to_le_bytes());
        p.extend_from_slice(&len.to_le_bytes());
        p.extend_from_slice(data);
        p
    }

    /// Decodes a memory request payload; `None` if malformed.
    pub fn decode(payload: &[u8]) -> Option<(u64, u64, &[u8])> {
        if payload.len() < 16 {
            return None;
        }
        let addr = u64::from_le_bytes(payload[0..8].try_into().ok()?);
        let len = u64::from_le_bytes(payload[8..16].try_into().ok()?);
        Some((addr, len, &payload[16..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apiary_cap::{EndpointId, MemRange, ServiceId};
    use apiary_noc::NocConfig;

    fn monitor(node: u16) -> Monitor {
        Monitor::new(NodeId(node), MonitorConfig::default())
    }

    fn ep_cap(m: &mut Monitor, dst: u16, rights: Rights) -> CapRef {
        m.install_cap(Capability::new(
            CapKind::Endpoint(EndpointId(u32::from(dst))),
            rights,
        ))
        .expect("space")
    }

    #[test]
    fn send_requires_capability() {
        let mut m = monitor(0);
        let bogus = CapRef {
            index: 3,
            generation: 0,
        };
        let err = m
            .send(bogus, 1, 0, TrafficClass::Request, vec![], Cycle(1))
            .expect_err("no cap installed");
        assert!(matches!(err, SendError::Cap(_)));
        assert_eq!(m.stats().denied, 1);
    }

    #[test]
    fn send_happy_path_stamps_src_and_badge() {
        let mut noc = Noc::new(NocConfig::soft(2, 2));
        let mut m = monitor(0);
        let cap = m
            .install_cap(Capability::badged(
                CapKind::Endpoint(EndpointId(3)),
                Rights::SEND,
                0xBEE5,
            ))
            .expect("space");
        m.send(cap, 7, 42, TrafficClass::Request, vec![1, 2], Cycle(0))
            .expect("allowed");
        // Pump out after the check pipeline cycle.
        m.pump_out(&mut noc, Cycle(1));
        assert!(noc.run_until_quiescent(1_000));
        let d = noc.poll_eject(NodeId(3)).expect("delivered");
        assert_eq!(d.msg.src, NodeId(0), "monitor stamps the true source");
        assert_eq!(d.msg.badge, 0xBEE5);
        assert_eq!(d.msg.kind, 7);
        assert_eq!(d.msg.tag, 42);
    }

    #[test]
    fn recv_only_cap_cannot_send() {
        let mut m = monitor(0);
        let cap = ep_cap(&mut m, 1, Rights::RECV);
        let err = m
            .send(cap, 1, 0, TrafficClass::Request, vec![], Cycle(0))
            .expect_err("SEND missing");
        assert!(matches!(
            err,
            SendError::Cap(CapError::InsufficientRights { .. })
        ));
    }

    #[test]
    fn service_caps_resolve_through_name_table() {
        let mut m = monitor(0);
        let cap = m
            .install_cap(Capability::new(
                CapKind::Service(ServiceId(9)),
                Rights::SEND,
            ))
            .expect("space");
        // Unbound: unknown service.
        assert_eq!(
            m.send(cap, 1, 0, TrafficClass::Request, vec![], Cycle(0)),
            Err(SendError::UnknownService)
        );
        // Bind and retry.
        m.bind_service(9, NodeId(2));
        m.send(cap, 1, 0, TrafficClass::Request, vec![], Cycle(0))
            .expect("resolves now");
    }

    #[test]
    fn rate_limit_denies_and_counts() {
        let cfg = MonitorConfig {
            rate: Some((0, 100)), // 100-byte bucket, no refill.
            ..MonitorConfig::default()
        };
        let mut m = Monitor::new(NodeId(0), cfg);
        let cap = ep_cap(&mut m, 1, Rights::SEND);
        // 64 + 16 header = 80 bytes: fits once.
        m.send(cap, 1, 0, TrafficClass::Bulk, vec![0; 64], Cycle(0))
            .expect("burst");
        let err = m
            .send(cap, 1, 1, TrafficClass::Bulk, vec![0; 64], Cycle(0))
            .expect_err("bucket empty");
        assert_eq!(err, SendError::RateLimited);
        assert_eq!(m.stats().rate_limited, 1);
    }

    #[test]
    fn outbox_backpressure() {
        let cfg = MonitorConfig {
            outbox_depth: 2,
            ..MonitorConfig::default()
        };
        let mut m = Monitor::new(NodeId(0), cfg);
        let cap = ep_cap(&mut m, 1, Rights::SEND);
        m.send(cap, 1, 0, TrafficClass::Request, vec![], Cycle(0))
            .expect("slot 1");
        m.send(cap, 1, 1, TrafficClass::Request, vec![], Cycle(0))
            .expect("slot 2");
        assert_eq!(
            m.send(cap, 1, 2, TrafficClass::Request, vec![], Cycle(0)),
            Err(SendError::Backpressure)
        );
    }

    #[test]
    fn payload_cap_enforced() {
        let mut m = monitor(0);
        let cap = ep_cap(&mut m, 1, Rights::SEND);
        assert_eq!(
            m.send(cap, 1, 0, TrafficClass::Bulk, vec![0; 5000], Cycle(0)),
            Err(SendError::PayloadTooLarge)
        );
    }

    #[test]
    fn fail_stop_seals_the_tile() {
        let mut noc = Noc::new(NocConfig::soft(2, 2));
        let mut m0 = monitor(0);
        let mut m1 = monitor(1);
        let cap = ep_cap(&mut m0, 1, Rights::SEND);

        m1.fail_stop(Cycle(0));
        assert_eq!(m1.state(), TileState::FailStopped);

        // Tile 0 sends to the dead tile 1.
        m0.send(
            cap,
            wire::KIND_REQUEST,
            5,
            TrafficClass::Request,
            vec![9],
            Cycle(0),
        )
        .expect("cap is fine");
        m0.pump_out(&mut noc, Cycle(1));
        assert!(noc.run_until_quiescent(1_000));
        let now = noc.now();
        m1.pump_in(&mut noc, now);
        // The dead tile minted a NACK instead of consuming.
        assert_eq!(m1.inbox_len(), 0);
        assert_eq!(m1.stats().nacks_sent, 1);
        m1.pump_out(&mut noc, now);
        assert!(noc.run_until_quiescent(1_000));
        let now = noc.now();
        m0.pump_in(&mut noc, now);
        let d = m0.recv().expect("error reply");
        assert_eq!(d.msg.kind, wire::KIND_ERROR);
        assert_eq!(d.msg.payload[0], wire::err::TARGET_FAILED);
        assert_eq!(d.msg.tag, 5, "error reply correlates to the request");

        // And the dead tile cannot send.
        assert_eq!(
            m1.send(cap, 1, 0, TrafficClass::Request, vec![], now),
            Err(SendError::FailStopped)
        );
    }

    #[test]
    fn errors_are_not_nacked() {
        let mut m = monitor(1);
        m.fail_stop(Cycle(0));
        let mut err_msg = Message::new(NodeId(0), NodeId(1), TrafficClass::Control, vec![1]);
        err_msg.kind = wire::KIND_ERROR;
        m.accept(
            Delivered {
                msg: err_msg,
                injected_at: Cycle(0),
                delivered_at: Cycle(1),
            },
            Cycle(1),
        );
        assert_eq!(m.stats().nacks_sent, 0);
        assert_eq!(m.stats().dropped, 1);
    }

    #[test]
    fn inbox_overflow_nacks() {
        let cfg = MonitorConfig {
            inbox_depth: 1,
            ..MonitorConfig::default()
        };
        let mut m = Monitor::new(NodeId(1), cfg);
        for i in 0..2 {
            let mut msg = Message::new(NodeId(0), NodeId(1), TrafficClass::Request, vec![]);
            msg.kind = wire::KIND_REQUEST;
            msg.tag = i;
            m.accept(
                Delivered {
                    msg,
                    injected_at: Cycle(0),
                    delivered_at: Cycle(1),
                },
                Cycle(1),
            );
        }
        assert_eq!(m.inbox_len(), 1);
        assert_eq!(m.stats().nacks_sent, 1);
    }

    #[test]
    fn mem_send_checks_bounds_before_network() {
        let mut m = monitor(0);
        let seg = m
            .install_cap(Capability::new(
                CapKind::Memory(MemRange::new(0x4000, 0x100)),
                Rights::READ | Rights::WRITE,
            ))
            .expect("space");
        let svc = ep_cap(&mut m, 3, Rights::SEND);
        // In-bounds write.
        m.send_mem(
            seg,
            svc,
            AccessKind::Write,
            0x10,
            4,
            &[1, 2, 3, 4],
            1,
            Cycle(0),
        )
        .expect("in bounds");
        // Out-of-bounds read denied locally.
        let err = m
            .send_mem(seg, svc, AccessKind::Read, 0xfff, 8, &[], 2, Cycle(0))
            .expect_err("out of bounds");
        assert!(matches!(err, SendError::Protect(_)));
        assert_eq!(m.stats().sent, 1, "denied access never queued");
    }

    #[test]
    fn mem_payload_encodes_physical_address() {
        let mut m = monitor(0);
        let seg = m
            .install_cap(Capability::new(
                CapKind::Memory(MemRange::new(0x4000, 0x100)),
                Rights::READ,
            ))
            .expect("space");
        let svc = ep_cap(&mut m, 3, Rights::SEND);
        m.send_mem(seg, svc, AccessKind::Read, 0x20, 8, &[], 1, Cycle(0))
            .expect("in bounds");
        let (_, msg) = m.outbox.pop_front().expect("queued");
        let (addr, len, data) = wire_mem::decode(&msg.payload).expect("well formed");
        assert_eq!(addr, 0x4020);
        assert_eq!(len, 8);
        assert!(data.is_empty());
        assert_eq!(msg.kind, wire::KIND_MEM_READ);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = monitor(0);
        let cap = ep_cap(&mut m, 1, Rights::SEND);
        m.send(cap, 1, 0, TrafficClass::Request, vec![], Cycle(0))
            .expect("queued");
        m.fail_stop(Cycle(1));
        m.reset(Cycle(2));
        assert_eq!(m.state(), TileState::Running);
        assert_eq!(m.caps().live(), 0, "reconfig revokes all authority");
        // Old cap refs are dead.
        assert!(matches!(
            m.send(cap, 1, 0, TrafficClass::Request, vec![], Cycle(3)),
            Err(SendError::Cap(_))
        ));
    }

    #[test]
    fn out_of_range_endpoint_is_an_error_not_an_alias() {
        // Regression: endpoint 65537 used to truncate (`e.0 as u16`) and
        // alias node 1, silently routing traffic to the wrong tile.
        let mut m = monitor(0);
        let cap = m
            .install_cap(Capability::new(
                CapKind::Endpoint(EndpointId(65_537)),
                Rights::SEND,
            ))
            .expect("space");
        assert_eq!(
            m.send(cap, 1, 0, TrafficClass::Request, vec![1], Cycle(0)),
            Err(SendError::InvalidEndpoint)
        );
        assert_eq!(m.stats().denied, 1);
        assert_eq!(m.outbox_len(), 0, "nothing queued for the bogus id");
        // And the reply-path lookup must not confuse it with node 1 either.
        assert_eq!(m.find_endpoint_cap(NodeId(1)), None);
    }

    #[test]
    fn flow_cache_skips_pipeline_on_repeat_sends() {
        let mut m = monitor(0);
        let cap = ep_cap(&mut m, 1, Rights::SEND);
        m.send(cap, 1, 0, TrafficClass::Request, vec![], Cycle(5))
            .expect("first send primes the flow");
        m.send(cap, 1, 1, TrafficClass::Request, vec![], Cycle(5))
            .expect("second send hits the cache");
        assert_eq!(m.stats().flow_misses, 1);
        assert_eq!(m.stats().flow_hits, 1);
        // First message pays check_cycles (ready at 6); the hit is ready
        // immediately but queues behind it in FIFO order.
        assert_eq!(m.outbox_next_ready(), Some(Cycle(6)));
        let ready: Vec<Cycle> = m.outbox.iter().map(|(r, _)| *r).collect();
        assert_eq!(ready, vec![Cycle(6), Cycle(5)]);
    }

    #[test]
    fn revoke_invalidates_flow_cache() {
        let mut m = monitor(0);
        let cap = ep_cap(&mut m, 1, Rights::SEND);
        m.send(cap, 1, 0, TrafficClass::Request, vec![], Cycle(0))
            .expect("primes the cache");
        m.revoke_cap(cap).expect("live");
        // The cached verdict must not outlive the capability.
        assert!(matches!(
            m.send(cap, 1, 1, TrafficClass::Request, vec![], Cycle(1)),
            Err(SendError::Cap(_))
        ));
        assert_eq!(m.stats().denied, 1);
    }

    #[test]
    fn rebind_invalidates_flow_cache() {
        let mut m = monitor(0);
        let cap = m
            .install_cap(Capability::new(
                CapKind::Service(ServiceId(9)),
                Rights::SEND,
            ))
            .expect("space");
        m.bind_service(9, NodeId(2));
        m.send(cap, 1, 0, TrafficClass::Request, vec![], Cycle(0))
            .expect("resolves to node 2");
        // Supervisor rewires the service to node 3: the cached verdict for
        // the old destination must be dropped, not replayed.
        m.bind_service(9, NodeId(3));
        m.send(cap, 1, 1, TrafficClass::Request, vec![], Cycle(0))
            .expect("resolves to node 3");
        let dsts: Vec<NodeId> = m.outbox.iter().map(|(_, msg)| msg.dst).collect();
        assert_eq!(dsts, vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn flow_cache_off_restores_per_message_checks() {
        let cfg = MonitorConfig {
            flow_cache: false,
            ..MonitorConfig::default()
        };
        let mut m = Monitor::new(NodeId(0), cfg);
        let cap = ep_cap(&mut m, 1, Rights::SEND);
        m.send(cap, 1, 0, TrafficClass::Request, vec![], Cycle(0))
            .expect("ok");
        m.send(cap, 1, 1, TrafficClass::Request, vec![], Cycle(0))
            .expect("ok");
        assert_eq!(m.stats().flow_hits, 0);
        assert_eq!(m.stats().flow_misses, 0);
        let ready: Vec<Cycle> = m.outbox.iter().map(|(r, _)| *r).collect();
        assert_eq!(
            ready,
            vec![Cycle(1), Cycle(1)],
            "every message pays the pipeline"
        );
    }

    #[test]
    fn wire_mem_roundtrip() {
        let p = wire_mem::encode(0xdead_beef, 32, &[7; 5]);
        let (a, l, d) = wire_mem::decode(&p).expect("well formed");
        assert_eq!(a, 0xdead_beef);
        assert_eq!(l, 32);
        assert_eq!(d, &[7; 5]);
        assert_eq!(wire_mem::decode(&[0; 15]), None);
    }
}
