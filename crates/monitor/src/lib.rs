//! The Apiary per-tile monitor (§4.1, §4.4–§4.6 of the paper).
//!
//! Every tile pairs an untrusted accelerator with a trusted monitor; the
//! monitor is the accelerator's *only* interface to the rest of the system
//! (Figure 1). All traffic — sends, receives, memory accesses — crosses it,
//! which is where Apiary's isolation story lives:
//!
//! - **capability enforcement**: outbound messages must present a live
//!   [`apiary_cap::CapRef`] carrying [`apiary_cap::Rights::SEND`]; memory
//!   accesses are bounds-checked against segment capabilities before they
//!   ever reach the memory service,
//! - **service naming**: capabilities name logical services; the monitor's
//!   name table resolves them to physical NoC nodes (§4.3 — naming is an
//!   API-layer concern, not wiring),
//! - **source stamping**: the monitor writes the true source and the
//!   capability badge into every message, so identity cannot be forged,
//! - **rate limiting**: a token bucket on egress bounds the damage of a
//!   misbehaving accelerator (§4.5),
//! - **fault handling**: on a fault the monitor fail-stops the tile —
//!   drains traffic and answers subsequent requests with errors (§4.4),
//! - **tracing**: every decision is observable through [`apiary_trace`].
//!
//! [`area`] models the hardware cost of all of this, which is the paper's
//! first open question (§6).

pub mod area;
pub mod monitor;
pub mod rate;
pub mod wire;

pub use area::{MonitorAreaModel, MonitorFeatures};
pub use monitor::{Monitor, MonitorConfig, MonitorStats, SendError, TileState};
pub use rate::TokenBucket;
