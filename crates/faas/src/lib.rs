//! The serverless plane: FPGA functions as a managed, elastic service.
//!
//! The cluster fabric (`apiary-cluster`) gives Apiary boards, a gossip
//! directory, remote capabilities and a balancer; the checkpoint plane
//! gave it partial-reconfiguration pricing through the ICAP. This crate
//! stacks the cloud-native layer on top — a Funky-style orchestrator in
//! which the unit of deployment is an **FPGA function**: a bitstream with
//! an area footprint (from `apiary-resources`), priced deploys, and a pool
//! of replicas the platform grows and shrinks on demand.
//!
//! The pieces, bottom-up:
//!
//! - [`cache::BitstreamCache`] — per-board LRU cache of function
//!   bitstreams. A cold start pays the (modelled) fetch from the bitstream
//!   store only on a miss; eviction is priced explicitly in the stats so
//!   E18 can show what cache capacity buys.
//! - [`admission::TenantAdmission`] — per-tenant token buckets at the
//!   orchestrator ingress. A greedy tenant's invocation storm is shed at
//!   the front door; everyone else's buckets are untouched (the same
//!   isolation argument the per-tile monitor makes, one layer up).
//! - [`orchestrator::FaasSystem`] — the control loop: register →
//!   deploy-on-demand → invoke → autoscale → scale-to-zero. Replicas are
//!   placed with power-of-two-choices over the boards' **elastic area
//!   ledgers** (FOS-style: a per-board budget from the floor-planner that
//!   every resident function's footprint is packed into), deployed through
//!   [`apiary_cluster::ClusterSystem::pool_deploy`] (ICAP-priced, directory
//!   published only when the tile is live) and reclaimed through
//!   `pool_teardown` (tombstoned, caps revoked).
//!
//! **Determinism.** The orchestrator owns no randomness beyond the seeded
//! placement RNG, schedules every timer (bitstream fetches, autoscale
//! boundaries, queue expiries) as an absolute cycle, and exposes
//! [`orchestrator::FaasSystem::next_wakeup`] so the event clock can jump
//! straight to the next cycle where anything can happen. E18 runs
//! byte-identical across `--jobs` counts and event-vs-dense clocks.

pub mod admission;
pub mod cache;
pub mod orchestrator;

pub use admission::{AdmissionConfig, TenantAdmission};
pub use cache::BitstreamCache;
pub use orchestrator::{
    FaasConfig, FaasStats, FaasSystem, FunctionSpec, InvokeOutcome, ReplicaState,
};
