//! Per-board bitstream cache.
//!
//! A cold start has two costs: *fetching* the bitstream from the store
//! (host DRAM or the network — orders of magnitude slower than the ICAP)
//! and *loading* it through the ICAP. The cache removes the first on a
//! hit. Capacity is bytes of on-board staging memory; eviction is LRU and
//! every eviction is counted and priced (bytes that will have to be
//! re-fetched), so an experiment can show exactly what a cache size buys.

use std::collections::BTreeMap;

/// LRU bitstream cache for one board.
///
/// Recency is a monotone access stamp, not wall time, so behaviour is a
/// pure function of the access sequence (determinism rule). All maps are
/// `BTreeMap` for stable iteration.
#[derive(Debug, Clone)]
pub struct BitstreamCache {
    capacity_bytes: u64,
    used_bytes: u64,
    /// name → (bytes, last-access stamp).
    entries: BTreeMap<String, (u64, u64)>,
    stamp: u64,
    /// Lookups that found the bitstream resident.
    pub hits: u64,
    /// Lookups that missed (and will pay the fetch).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Bytes evicted — the re-fetch debt this cache size incurred.
    pub bytes_evicted: u64,
}

impl BitstreamCache {
    /// Creates a cache holding at most `capacity_bytes` of bitstreams.
    pub fn new(capacity_bytes: u64) -> BitstreamCache {
        BitstreamCache {
            capacity_bytes,
            used_bytes: 0,
            entries: BTreeMap::new(),
            stamp: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            bytes_evicted: 0,
        }
    }

    /// Looks up `name`, refreshing its recency on a hit. Returns whether
    /// the bitstream is resident.
    pub fn lookup(&mut self, name: &str) -> bool {
        self.stamp += 1;
        match self.entries.get_mut(name) {
            Some(e) => {
                e.1 = self.stamp;
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Inserts `name` after a fetch, evicting least-recently-used entries
    /// until it fits. A bitstream larger than the whole cache is not
    /// admitted (it would evict everything for nothing).
    pub fn insert(&mut self, name: &str, bytes: u64) {
        if bytes > self.capacity_bytes {
            return;
        }
        if let Some((old, _)) = self.entries.remove(name) {
            self.used_bytes -= old;
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            let victim = self
                .entries
                .iter()
                .min_by_key(|&(name, &(_, stamp))| (stamp, name.clone()))
                .map(|(name, _)| name.clone())
                .expect("used_bytes > 0 implies an entry exists");
            let (vbytes, _) = self.entries.remove(&victim).expect("listed above");
            self.used_bytes -= vbytes;
            self.evictions += 1;
            self.bytes_evicted += vbytes;
        }
        self.stamp += 1;
        self.entries.insert(name.to_string(), (bytes, self.stamp));
        self.used_bytes += bytes;
    }

    /// Whether `name` is resident (no recency refresh, no stat count).
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Configured capacity, bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Hit fraction over all lookups so far, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_stats() {
        let mut c = BitstreamCache::new(100);
        assert!(!c.lookup("a"));
        c.insert("a", 40);
        assert!(c.lookup("a"));
        assert_eq!((c.hits, c.misses), (1, 1));
        assert_eq!(c.used_bytes(), 40);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = BitstreamCache::new(100);
        c.insert("a", 40);
        c.insert("b", 40);
        // Touch `a` so `b` is the LRU victim.
        assert!(c.lookup("a"));
        c.insert("c", 40);
        assert!(c.contains("a") && c.contains("c") && !c.contains("b"));
        assert_eq!(c.evictions, 1);
        assert_eq!(c.bytes_evicted, 40);
    }

    #[test]
    fn oversized_bitstream_is_not_admitted() {
        let mut c = BitstreamCache::new(100);
        c.insert("a", 40);
        c.insert("huge", 101);
        assert!(c.contains("a") && !c.contains("huge"));
        assert_eq!(c.evictions, 0);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut c = BitstreamCache::new(100);
        c.insert("a", 40);
        c.insert("a", 60);
        assert_eq!(c.used_bytes(), 60);
    }

    #[test]
    fn eviction_chain_frees_enough() {
        let mut c = BitstreamCache::new(100);
        c.insert("a", 30);
        c.insert("b", 30);
        c.insert("c", 30);
        c.insert("d", 90);
        assert!(c.contains("d"));
        assert_eq!(c.used_bytes(), 90);
        assert_eq!(c.evictions, 3);
    }
}
