//! Per-tenant admission control at the orchestrator ingress.
//!
//! The per-tile monitor already rate-limits *bytes on the NoC*; this is
//! the same token-bucket idiom one layer up, metering *invocations per
//! tenant* before any queue or replica is touched. A tenant that floods
//! the front door drains only its own bucket: everyone else's tokens (and
//! therefore goodput) are untouched, which is what the flash-crowd cell of
//! E18 demonstrates. Buckets reuse [`apiary_monitor::TokenBucket`] — the
//! milli-unit integer bucket that is exact and synthesizable — with one
//! "byte" standing for one invocation.

use apiary_monitor::TokenBucket;
use apiary_sim::Cycle;
use std::collections::BTreeMap;

/// Ingress policy, identical for every tenant (differentiated tiers would
/// just be a map of these).
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Sustained admission rate, milli-invocations per cycle
    /// (1000 = one invocation per cycle).
    pub rate_milli_inv_per_cycle: u64,
    /// Burst allowance, whole invocations. The bucket starts full.
    pub burst_invocations: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            rate_milli_inv_per_cycle: 100, // 0.1 invocations/cycle sustained
            burst_invocations: 32,
        }
    }
}

/// Per-tenant token buckets, created lazily on first sight of a tenant.
#[derive(Debug, Clone)]
pub struct TenantAdmission {
    cfg: AdmissionConfig,
    buckets: BTreeMap<u32, TokenBucket>,
    /// Invocations admitted, all tenants.
    pub admitted: u64,
    /// Invocations shed at the front door, all tenants.
    pub shed: u64,
}

impl TenantAdmission {
    /// Creates the admission stage with one policy for every tenant.
    pub fn new(cfg: AdmissionConfig) -> TenantAdmission {
        TenantAdmission {
            cfg,
            buckets: BTreeMap::new(),
            admitted: 0,
            shed: 0,
        }
    }

    /// Admits or sheds one invocation from `tenant` at `now`.
    pub fn admit(&mut self, tenant: u32, now: Cycle) -> bool {
        let cfg = self.cfg;
        let bucket = self.buckets.entry(tenant).or_insert_with(|| {
            TokenBucket::new(cfg.rate_milli_inv_per_cycle, cfg.burst_invocations)
        });
        if bucket.try_consume(1, now) {
            self.admitted += 1;
            true
        } else {
            self.shed += 1;
            false
        }
    }

    /// Invocations shed for one tenant so far.
    pub fn shed_for(&self, tenant: u32) -> u64 {
        self.buckets.get(&tenant).map_or(0, |b| b.denials())
    }

    /// Tenants seen so far.
    pub fn tenants(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The satellite guarantee: a greedy tenant hammering the ingress is
    /// shed, while a well-behaved tenant arriving at its sustained rate
    /// loses nothing — not one invocation.
    #[test]
    fn greedy_tenant_cannot_starve_others() {
        let mut adm = TenantAdmission::new(AdmissionConfig {
            rate_milli_inv_per_cycle: 100, // 0.1 inv/cycle
            burst_invocations: 10,
        });
        let mut polite_ok = 0u64;
        let mut greedy_ok = 0u64;
        for t in 0..10_000u64 {
            // Greedy tenant 7: one invocation attempt every cycle (10x its
            // sustained allowance).
            if adm.admit(7, Cycle(t)) {
                greedy_ok += 1;
            }
            // Polite tenant 3: one invocation every 10 cycles — exactly
            // the sustained rate.
            if t % 10 == 0 && adm.admit(3, Cycle(t)) {
                polite_ok += 1;
            }
        }
        assert_eq!(polite_ok, 1_000, "polite tenant admitted in full");
        assert_eq!(adm.shed_for(3), 0);
        // The greedy tenant is capped near its own sustained allowance
        // (burst + rate x horizon), far below its demand.
        assert!(
            greedy_ok <= 10 + 1_000 + 1,
            "greedy admitted {greedy_ok}, expected ~1010"
        );
        assert!(adm.shed_for(7) >= 8_900);
        assert_eq!(adm.admitted, polite_ok + greedy_ok);
    }

    #[test]
    fn burst_then_sustained_rate() {
        let mut adm = TenantAdmission::new(AdmissionConfig {
            rate_milli_inv_per_cycle: 1_000,
            burst_invocations: 4,
        });
        for _ in 0..4 {
            assert!(adm.admit(1, Cycle(0)), "burst admitted");
        }
        assert!(!adm.admit(1, Cycle(0)), "burst exhausted");
        assert!(adm.admit(1, Cycle(1)), "refilled at 1 inv/cycle");
    }

    #[test]
    fn tenants_are_created_lazily() {
        let mut adm = TenantAdmission::new(AdmissionConfig::default());
        assert_eq!(adm.tenants(), 0);
        adm.admit(1, Cycle(0));
        adm.admit(2, Cycle(0));
        adm.admit(1, Cycle(1));
        assert_eq!(adm.tenants(), 2);
    }
}
