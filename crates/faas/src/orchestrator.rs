//! The function orchestrator: register → deploy → invoke → autoscale →
//! scale-to-zero.
//!
//! An [`FpgaFunction`](FunctionSpec) is a bitstream with an area footprint.
//! The orchestrator owns a fleet of boards (a [`ClusterSystem`]) and, per
//! board, an **elastic area ledger**: the floor-planner's per-tile dynamic
//! slot times the number of usable tiles, treated as one FOS-style shared
//! budget that every resident function's footprint must pack into. A
//! replica therefore consumes two resources — one mesh node (the tile that
//! hosts it) and its footprint out of the board's area budget — and both
//! are checked before placement.
//!
//! **Cold-start cost model.** A cold start pays, in order: bitstream fetch
//! from the store on a cache miss (`bitstream_bytes / fetch_bytes_per_cycle`
//! cycles), the ICAP partial-reconfiguration load (priced by the board's
//! `icap_bytes_per_cycle` through [`ClusterSystem::pool_deploy`]), gateway
//! re-wiring and directory publication (the republish pass), plus gossip
//! propagation if the invocation entered at another board. Warm
//! invocations skip all of it and go straight through the directory to a
//! live replica.
//!
//! **Autoscaler.** At fixed interval boundaries each function's queue
//! depth is compared against `target_queue_per_replica x (live + pending)`
//! replicas; excess demand grows the pool by one replica, placed by
//! power-of-two-choices over the boards' area utilisation. A function idle
//! for `idle_intervals_to_zero` consecutive intervals shrinks by one
//! replica per boundary — down to zero, at which point its directory
//! entries are tombstoned ([`ClusterSystem::pool_teardown`]), its tiles
//! and area returned, and the next invocation pays a measured cold start.
//!
//! **Determinism rules.** Every timer is an absolute cycle surfaced by
//! [`FaasSystem::next_wakeup`]; [`FaasSystem::pump`] runs after every
//! executed cycle and is a provable no-op on cycles the event clock skips
//! (its remaining triggers — completions, republishes, gossip merges — are
//! all board- or fabric-eventful). The only randomness is the seeded
//! placement RNG, drawn in a fixed order.

use crate::admission::{AdmissionConfig, TenantAdmission};
use crate::cache::BitstreamCache;
use apiary_accel::Accelerator;
use apiary_cap::ServiceId;
use apiary_cluster::{ClusterConfig, ClusterSystem, SubmitError};
use apiary_core::{AppId, FaultPolicy};
use apiary_noc::NodeId;
use apiary_resources::{Area, FloorPlanner, Part};
use apiary_sim::{Cycle, SimRng};
use apiary_trace::LatencyTracker;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

/// Service ids for functions start here, clear of the hand-assigned ids
/// experiments use for statically deployed services.
const FN_SERVICE_BASE: u32 = 0x4600; // "F"

/// Serverless-plane configuration.
pub struct FaasConfig {
    /// The board fleet underneath.
    pub cluster: ClusterConfig,
    /// Part number every board is built from (resolved in the catalog).
    pub part: &'static str,
    /// Per-tile monitor area used to floor-plan the boards.
    pub monitor_area: Area,
    /// Per-board bitstream cache capacity, bytes.
    pub cache_bytes: u64,
    /// Bitstream-store fetch bandwidth on a cache miss, bytes/cycle
    /// (host DRAM or network — much slower than the ICAP).
    pub fetch_bytes_per_cycle: u64,
    /// Cycles between autoscaler boundaries.
    pub autoscale_interval: u64,
    /// Queue depth one replica is expected to absorb; deeper queues grow
    /// the pool.
    pub target_queue_per_replica: u64,
    /// Consecutive idle autoscale intervals before a function starts
    /// shrinking toward zero.
    pub idle_intervals_to_zero: u64,
    /// Cycles a queued invocation may wait for a replica before it is
    /// completed as an error (the cluster's `request_timeout` only covers
    /// submitted work).
    pub queue_timeout: u64,
    /// Per-tenant ingress policy.
    pub admission: AdmissionConfig,
    /// Placement RNG seed (power-of-two-choices draws).
    pub seed: u64,
}

impl FaasConfig {
    /// The per-tile monitor area assumed by default — the representative
    /// implementation the resource experiments use (CAM-assisted cap table
    /// in BRAM, wire checks in LUTs).
    pub const DEFAULT_MONITOR: Area = Area {
        luts: 2_000,
        ffs: 2_500,
        bram36: 4,
        dsps: 0,
    };
}

impl Default for FaasConfig {
    fn default() -> Self {
        FaasConfig {
            cluster: ClusterConfig::default(),
            part: "VU9P",
            monitor_area: FaasConfig::DEFAULT_MONITOR,
            cache_bytes: 24 << 10,
            fetch_bytes_per_cycle: 2,
            autoscale_interval: 2_000,
            target_queue_per_replica: 4,
            idle_intervals_to_zero: 3,
            queue_timeout: 10_000,
            admission: AdmissionConfig::default(),
            seed: 0xFAA5_0001,
        }
    }
}

/// A registered FPGA function: the deployable unit of the serverless
/// plane.
#[derive(Clone)]
pub struct FunctionSpec {
    /// Directory name replicas publish under.
    pub name: String,
    /// Area footprint, packed into a board's elastic budget per replica.
    pub footprint: Area,
    /// Partial bitstream size — prices both the store fetch and the ICAP
    /// load.
    pub bitstream_bytes: u64,
    /// Owning application (capability isolation domain).
    pub app: AppId,
    /// Builds a fresh accelerator instance per deploy.
    pub factory: Rc<dyn Fn() -> Box<dyn Accelerator>>,
}

/// Lifecycle of one replica slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// Cache miss: the bitstream is streaming from the store; the tile and
    /// area are already reserved.
    Fetching {
        /// Cycle the fetch completes and the ICAP load can start.
        ready_at: Cycle,
    },
    /// Bitstream loading through the ICAP; directory entry not yet
    /// republished.
    Loading,
    /// Published and serving (the gateway holds its client cap).
    Live,
}

#[derive(Debug, Clone)]
struct Replica {
    board: u16,
    node: NodeId,
    state: ReplicaState,
}

struct Queued {
    tag: u64,
    origin: u16,
    payload: Vec<u8>,
    deadline: Cycle,
}

struct Function {
    spec: FunctionSpec,
    service: ServiceId,
    replicas: Vec<Replica>,
    queue: VecDeque<Queued>,
    invoked_this_interval: bool,
    idle_intervals: u64,
    invocations: u64,
    cold_invocations: u64,
    completed_ok: u64,
    completed_err: u64,
    expired: u64,
    deploys: u64,
    reclaims: u64,
}

/// One board's elastic resource ledger.
struct BoardLedger {
    /// Shared dynamic-region budget: tile slot x usable tiles.
    budget: Area,
    /// Footprints of resident (and reserving) replicas.
    used: Area,
    /// Usable mesh nodes not hosting a replica.
    free_nodes: BTreeSet<NodeId>,
    cache: BitstreamCache,
}

struct Inflight {
    fn_idx: usize,
    tenant: u32,
    cold: bool,
    arrival: Cycle,
}

/// What happened to an invocation at the front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvokeOutcome {
    /// Shed by per-tenant admission; never entered the system.
    Throttled,
    /// Submitted straight to a live replica (warm path).
    Submitted,
    /// Queued awaiting a replica; `cold` if no replica was live, so this
    /// invocation's latency includes a cold start.
    Queued {
        /// Whether the function had zero live replicas at arrival.
        cold: bool,
    },
    /// Completed as an error immediately (origin board dead).
    Failed,
}

/// A completed (or expired) invocation, for the experiment driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Finished {
    /// Function index from [`FaasSystem::register`].
    pub fn_idx: usize,
    /// Tenant that issued it.
    pub tenant: u32,
    /// Whether it arrived cold (no live replica).
    pub cold: bool,
    /// Successful reply (vs error, timeout, or queue expiry).
    pub ok: bool,
    /// Arrival cycle at the orchestrator.
    pub arrival: Cycle,
    /// Completion cycle.
    pub finished_at: Cycle,
}

/// A point-in-time summary of one function's pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaasStats {
    /// Invocations admitted for this function.
    pub invocations: u64,
    /// Of those, arrivals with zero live replicas.
    pub cold_invocations: u64,
    /// Successful completions.
    pub completed_ok: u64,
    /// Error completions (timeouts, refusals, dead tiles).
    pub completed_err: u64,
    /// Queued invocations expired waiting for a replica.
    pub expired: u64,
    /// Replica deploys started (cache hit or miss).
    pub deploys: u64,
    /// Replicas reclaimed by scale-down.
    pub reclaims: u64,
    /// Replicas currently live.
    pub live: usize,
    /// Replicas currently fetching or loading.
    pub pending: usize,
    /// Invocations currently queued.
    pub queue_depth: usize,
}

/// The serverless plane over a board fleet.
pub struct FaasSystem {
    cfg: FaasConfig,
    cluster: ClusterSystem,
    boards: Vec<BoardLedger>,
    functions: Vec<Function>,
    inflight: BTreeMap<u64, Inflight>,
    admission: TenantAdmission,
    rng: SimRng,
    next_tag: u64,
    next_autoscale: Cycle,
    finished: Vec<Finished>,
    /// Latency of invocations that arrived cold (includes fetch, ICAP
    /// load, publication, and queueing).
    pub cold_latency: LatencyTracker,
    /// Latency of invocations that arrived with a live replica.
    pub warm_latency: LatencyTracker,
    /// Scale-ups denied because no board had both a free tile and area.
    pub scale_up_denied: u64,
    /// Queue flushes deferred by gateway backpressure.
    pub refusals: u64,
}

impl FaasSystem {
    /// Builds the fleet and floor-plans every board's elastic budget.
    ///
    /// # Panics
    ///
    /// Panics if the part is not in the catalog or the Apiary framework
    /// does not fit it — both configuration errors.
    pub fn new(cfg: FaasConfig) -> FaasSystem {
        let part = Part::by_number(cfg.part).expect("part in catalog");
        let nodes = (cfg.cluster.system.noc.width * cfg.cluster.system.noc.height) as u16;
        let mem_node = cfg.cluster.system.mem_node.unwrap_or(NodeId(nodes - 1));
        let usable: BTreeSet<NodeId> = (0..nodes)
            .map(NodeId)
            .filter(|&n| n != cfg.cluster.gateway && n != mem_node)
            .collect();
        let plan = FloorPlanner {
            tiles: nodes as u64,
            monitor: cfg.monitor_area,
            router: FloorPlanner::SOFT_ROUTER,
            io_shell: FloorPlanner::IO_SHELL,
        }
        .plan(part)
        .expect("Apiary framework fits the part");
        let budget = plan.tile_slot * usable.len() as u64;
        let cluster = ClusterSystem::new(cfg.cluster.clone());
        let boards = (0..cfg.cluster.boards)
            .map(|_| BoardLedger {
                budget,
                used: Area::ZERO,
                free_nodes: usable.clone(),
                cache: BitstreamCache::new(cfg.cache_bytes),
            })
            .collect();
        let admission = TenantAdmission::new(cfg.admission);
        let rng = SimRng::new(cfg.seed);
        let next_autoscale = Cycle(cfg.autoscale_interval);
        FaasSystem {
            cfg,
            cluster,
            boards,
            functions: Vec::new(),
            inflight: BTreeMap::new(),
            admission,
            rng,
            next_tag: 1,
            next_autoscale,
            finished: Vec::new(),
            cold_latency: LatencyTracker::new(),
            warm_latency: LatencyTracker::new(),
            scale_up_denied: 0,
            refusals: 0,
        }
    }

    /// Registers a function; returns its index for [`FaasSystem::invoke`].
    /// Registration deploys nothing — the first invocation (or the
    /// autoscaler) does.
    ///
    /// # Panics
    ///
    /// Panics if the footprint cannot fit even an empty board.
    pub fn register(&mut self, spec: FunctionSpec) -> usize {
        assert!(
            spec.footprint.fits_in(&self.boards[0].budget),
            "function `{}` exceeds a whole board's elastic budget",
            spec.name
        );
        let service = ServiceId(FN_SERVICE_BASE + self.functions.len() as u32);
        self.functions.push(Function {
            spec,
            service,
            replicas: Vec::new(),
            queue: VecDeque::new(),
            invoked_this_interval: false,
            idle_intervals: 0,
            invocations: 0,
            cold_invocations: 0,
            completed_ok: 0,
            completed_err: 0,
            expired: 0,
            deploys: 0,
            reclaims: 0,
        });
        self.functions.len() - 1
    }

    /// Invokes a function on behalf of `tenant`, entering at `origin`'s
    /// gateway. Warm path: straight through the directory to a live
    /// replica. Cold path: queued, with a deploy started if none is in
    /// flight.
    pub fn invoke(
        &mut self,
        fn_idx: usize,
        tenant: u32,
        origin: u16,
        payload: Vec<u8>,
    ) -> InvokeOutcome {
        let now = self.cluster.now();
        if !self.admission.admit(tenant, now) {
            return InvokeOutcome::Throttled;
        }
        let tag = self.next_tag;
        self.next_tag += 1;
        let name = self.functions[fn_idx].spec.name.clone();
        let cold = !self.functions[fn_idx]
            .replicas
            .iter()
            .any(|r| r.state == ReplicaState::Live);
        {
            let f = &mut self.functions[fn_idx];
            f.invocations += 1;
            f.invoked_this_interval = true;
            f.idle_intervals = 0;
            if cold {
                f.cold_invocations += 1;
            }
        }
        if cold {
            self.cold_latency.start(tag, now);
        } else {
            self.warm_latency.start(tag, now);
        }
        self.inflight.insert(
            tag,
            Inflight {
                fn_idx,
                tenant,
                cold,
                arrival: now,
            },
        );
        if !cold {
            match self.cluster.submit(origin, &name, tag, payload.clone()) {
                Ok(_) => return InvokeOutcome::Submitted,
                Err(SubmitError::OriginDead) => {
                    self.complete(tag, false, now);
                    return InvokeOutcome::Failed;
                }
                // Directory lag or gateway backpressure: fall through to
                // the queue and retry from pump().
                Err(SubmitError::NoReplica) | Err(SubmitError::Refused) => {}
            }
        }
        self.functions[fn_idx].queue.push_back(Queued {
            tag,
            origin,
            payload,
            deadline: now + self.cfg.queue_timeout,
        });
        let bringing = self.functions[fn_idx]
            .replicas
            .iter()
            .any(|r| r.state != ReplicaState::Live);
        if cold && !bringing {
            self.start_deploy(fn_idx);
        }
        InvokeOutcome::Queued { cold }
    }

    /// Starts one replica deploy for `fn_idx`: power-of-two-choices over
    /// boards with a free tile and area headroom, then cache lookup →
    /// fetch (miss) or straight to the ICAP (hit). Returns whether a
    /// deploy started.
    fn start_deploy(&mut self, fn_idx: usize) -> bool {
        let now = self.cluster.now();
        let footprint = self.functions[fn_idx].spec.footprint;
        let candidates: Vec<u16> = (0..self.cfg.cluster.boards)
            .filter(|&b| {
                let l = &self.boards[b as usize];
                self.cluster.alive(b)
                    && !l.free_nodes.is_empty()
                    && (l.used + footprint).fits_in(&l.budget)
                    && !self.functions[fn_idx].replicas.iter().any(|r| r.board == b)
            })
            .collect();
        let board = match candidates.len() {
            0 => {
                self.scale_up_denied += 1;
                return false;
            }
            1 => candidates[0],
            n => {
                // Power of two choices on area utilisation; lower board id
                // breaks ties so the draw order alone decides nothing.
                let a = candidates[self.rng.gen_range(n as u64) as usize];
                let b = candidates[self.rng.gen_range(n as u64) as usize];
                let util = |x: u16| {
                    let l = &self.boards[x as usize];
                    l.used.utilisation_of(&l.budget)
                };
                let (ua, ub) = (util(a), util(b));
                if ua < ub || (ua == ub && a <= b) {
                    a
                } else {
                    b
                }
            }
        };
        let ledger = &mut self.boards[board as usize];
        let node = *ledger.free_nodes.iter().next().expect("candidate has one");
        ledger.free_nodes.remove(&node);
        ledger.used += footprint;
        let name = self.functions[fn_idx].spec.name.clone();
        let bytes = self.functions[fn_idx].spec.bitstream_bytes;
        let hit = ledger.cache.lookup(&name);
        if !hit {
            ledger.cache.insert(&name, bytes);
        }
        let state = if hit {
            match self.icap_load(fn_idx, board, node) {
                Ok(()) => ReplicaState::Loading,
                Err(()) => {
                    let ledger = &mut self.boards[board as usize];
                    ledger.free_nodes.insert(node);
                    ledger.used = ledger.used.saturating_sub(&footprint);
                    self.scale_up_denied += 1;
                    return false;
                }
            }
        } else {
            ReplicaState::Fetching {
                ready_at: now + bytes.div_ceil(self.cfg.fetch_bytes_per_cycle.max(1)),
            }
        };
        let f = &mut self.functions[fn_idx];
        f.deploys += 1;
        f.replicas.push(Replica { board, node, state });
        true
    }

    /// Pushes a fetched bitstream into the ICAP via the cluster's pool
    /// hook. The directory entry appears when the republish pass fires.
    fn icap_load(&mut self, fn_idx: usize, board: u16, node: NodeId) -> Result<(), ()> {
        let f = &self.functions[fn_idx];
        let factory = f.spec.factory.clone();
        self.cluster
            .pool_deploy(
                board,
                &f.spec.name,
                f.service,
                node,
                f.spec.app,
                FaultPolicy::FailStop,
                f.spec.bitstream_bytes,
                Box::new(move || factory()),
            )
            .map(|_| ())
            .map_err(|_| ())
    }

    /// Completes `tag` toward trackers, counters and the finished log.
    fn complete(&mut self, tag: u64, ok: bool, now: Cycle) {
        let Some(inf) = self.inflight.remove(&tag) else {
            return;
        };
        if ok {
            let tracker = if inf.cold {
                &mut self.cold_latency
            } else {
                &mut self.warm_latency
            };
            tracker.finish(tag, now);
            self.functions[inf.fn_idx].completed_ok += 1;
        } else {
            self.functions[inf.fn_idx].completed_err += 1;
        }
        self.finished.push(Finished {
            fn_idx: inf.fn_idx,
            tenant: inf.tenant,
            cold: inf.cold,
            ok,
            arrival: inf.arrival,
            finished_at: now,
        });
    }

    /// The orchestrator control loop: call once after every executed
    /// cluster cycle (both clocks). Order matters and is fixed: fetches →
    /// liveness promotion → queue flush → completions → queue expiry →
    /// autoscale boundaries.
    pub fn pump(&mut self) {
        let now = self.cluster.now();

        // 1. Fetches that finished start their ICAP load.
        for fn_idx in 0..self.functions.len() {
            for ri in 0..self.functions[fn_idx].replicas.len() {
                let r = self.functions[fn_idx].replicas[ri].clone();
                if let ReplicaState::Fetching { ready_at } = r.state {
                    if ready_at <= now {
                        match self.icap_load(fn_idx, r.board, r.node) {
                            Ok(()) => {
                                self.functions[fn_idx].replicas[ri].state = ReplicaState::Loading;
                            }
                            Err(()) => {
                                // Tile unusable (should not happen on a
                                // live board): release the reservation.
                                let ledger = &mut self.boards[r.board as usize];
                                ledger.free_nodes.insert(r.node);
                                let fp = self.functions[fn_idx].spec.footprint;
                                ledger.used = ledger.used.saturating_sub(&fp);
                                self.functions[fn_idx].replicas.remove(ri);
                                self.scale_up_denied += 1;
                                break;
                            }
                        }
                    }
                }
            }
        }

        // 2. Loading → Live once the republish pass wired the gateway.
        for f in &mut self.functions {
            for r in &mut f.replicas {
                if r.state == ReplicaState::Loading
                    && self.cluster.has_local_cap(r.board, f.service)
                {
                    r.state = ReplicaState::Live;
                }
            }
        }

        // 3. Flush queues in function order, FIFO within each; stop at the
        //    first submit the directory or gateway cannot take yet.
        for fn_idx in 0..self.functions.len() {
            while let Some(deadline) = self.functions[fn_idx].queue.front().map(|q| q.deadline) {
                if deadline <= now {
                    let q = self.functions[fn_idx].queue.pop_front().expect("front");
                    self.functions[fn_idx].expired += 1;
                    self.complete(q.tag, false, now);
                    continue;
                }
                if !self.functions[fn_idx]
                    .replicas
                    .iter()
                    .any(|r| r.state == ReplicaState::Live)
                {
                    break;
                }
                let name = self.functions[fn_idx].spec.name.clone();
                let (tag, origin, payload) = {
                    let q = self.functions[fn_idx].queue.front().expect("checked");
                    (q.tag, q.origin, q.payload.clone())
                };
                match self.cluster.submit(origin, &name, tag, payload) {
                    Ok(_) => {
                        self.functions[fn_idx].queue.pop_front();
                    }
                    Err(SubmitError::NoReplica) => break, // gossip lag
                    Err(SubmitError::Refused) => {
                        self.refusals += 1;
                        break; // backpressure: retry next pump
                    }
                    Err(SubmitError::OriginDead) => {
                        self.functions[fn_idx].queue.pop_front();
                        self.complete(tag, false, now);
                    }
                }
            }
        }

        // 4. Cluster completions (successes, errors, timeouts).
        for c in self.cluster.take_completions() {
            self.complete(c.tag, !c.is_error, now);
        }

        // 5. Autoscale boundaries (absolute cycles, so both clocks land on
        //    exactly the same boundary cycles).
        while now >= self.next_autoscale {
            let boundary = self.next_autoscale;
            self.next_autoscale = boundary + self.cfg.autoscale_interval;
            self.autoscale(boundary);
        }
    }

    /// One autoscaler boundary: grow pools whose queues outrun their
    /// replicas, shrink pools idle long enough — one replica either way
    /// per function per boundary.
    fn autoscale(&mut self, _boundary: Cycle) {
        let now = self.cluster.now();
        for fn_idx in 0..self.functions.len() {
            let (live, pending, depth) = {
                let f = &self.functions[fn_idx];
                let live = f
                    .replicas
                    .iter()
                    .filter(|r| r.state == ReplicaState::Live)
                    .count() as u64;
                let pending = f.replicas.len() as u64 - live;
                (live, pending, f.queue.len() as u64)
            };
            let busy = {
                let f = &self.functions[fn_idx];
                f.invoked_this_interval
                    || !f.queue.is_empty()
                    || self.inflight.values().any(|i| i.fn_idx == fn_idx)
            };
            self.functions[fn_idx].invoked_this_interval = false;
            if depth > (live + pending) * self.cfg.target_queue_per_replica
                && ((live + pending) as usize) < self.boards.len()
            {
                self.start_deploy(fn_idx);
            }
            if busy {
                self.functions[fn_idx].idle_intervals = 0;
                continue;
            }
            self.functions[fn_idx].idle_intervals += 1;
            if self.functions[fn_idx].idle_intervals >= self.cfg.idle_intervals_to_zero {
                self.reclaim_one(fn_idx, now);
            }
        }
    }

    /// Reclaims one replica of an idle function: a still-fetching slot is
    /// cancelled outright (nothing touched the cluster yet); otherwise the
    /// highest-board live replica is torn down through the tombstoning
    /// pool hook. Loading replicas are skipped — the ICAP completion would
    /// resurrect a decommissioned tile.
    fn reclaim_one(&mut self, fn_idx: usize, _now: Cycle) {
        let footprint = self.functions[fn_idx].spec.footprint;
        if let Some(ri) = self.functions[fn_idx]
            .replicas
            .iter()
            .position(|r| matches!(r.state, ReplicaState::Fetching { .. }))
        {
            let r = self.functions[fn_idx].replicas.remove(ri);
            let ledger = &mut self.boards[r.board as usize];
            ledger.free_nodes.insert(r.node);
            ledger.used = ledger.used.saturating_sub(&footprint);
            self.functions[fn_idx].reclaims += 1;
            return;
        }
        let Some(ri) = self.functions[fn_idx]
            .replicas
            .iter()
            .rposition(|r| r.state == ReplicaState::Live)
        else {
            return;
        };
        let name = self.functions[fn_idx].spec.name.clone();
        let board = self.functions[fn_idx].replicas[ri].board;
        match self.cluster.pool_teardown(board, &name) {
            Ok(node) => {
                let ledger = &mut self.boards[board as usize];
                ledger.free_nodes.insert(node);
                ledger.used = ledger.used.saturating_sub(&footprint);
                self.functions[fn_idx].replicas.remove(ri);
                self.functions[fn_idx].reclaims += 1;
            }
            Err(_) => {
                // Mid-reconfiguration (racing a deploy): try again at the
                // next boundary.
            }
        }
    }

    /// The next cycle, no later than `horizon`, at which the orchestrator
    /// itself has timed work: a bitstream fetch completes, a queued
    /// invocation expires, or an autoscale boundary fires. Cluster-side
    /// events are the cluster's own business
    /// ([`ClusterSystem::advance_toward`] caps at them already).
    pub fn next_wakeup(&self, horizon: Cycle) -> Cycle {
        let next = self.cluster.now().saturating_add(1);
        let mut due = horizon.max(next);
        due = due.min(self.next_autoscale.max(next));
        for f in &self.functions {
            for r in &f.replicas {
                if let ReplicaState::Fetching { ready_at } = r.state {
                    due = due.min(ready_at.max(next));
                }
            }
            // FIFO queues with a fixed timeout have monotone deadlines, so
            // the front is the earliest.
            if let Some(q) = f.queue.front() {
                due = due.min(q.deadline.max(next));
            }
        }
        due.max(next)
    }

    /// Advances the fleet by one scheduling step (never beyond `horizon`)
    /// and runs the control loop. Drivers interleave their own arrival
    /// schedule by capping `horizon` at it, exactly like
    /// [`apiary_cluster::run_clients`].
    pub fn step_toward(&mut self, horizon: Cycle) {
        if self.cluster.now() >= horizon {
            return;
        }
        let due = self.next_wakeup(horizon);
        self.cluster.advance_toward(due);
        self.pump();
    }

    /// Runs `cycles` cycles (through [`FaasSystem::step_toward`], so both
    /// clocks execute identical work).
    pub fn run(&mut self, cycles: u64) {
        let end = Cycle(self.cluster.now().as_u64().saturating_add(cycles));
        while self.cluster.now() < end {
            self.step_toward(end);
        }
    }

    /// Runs until `stop` returns true or `limit` cycles elapse; returns
    /// whether `stop` fired.
    pub fn run_until(&mut self, limit: u64, mut stop: impl FnMut(&FaasSystem) -> bool) -> bool {
        let end = Cycle(self.cluster.now().as_u64().saturating_add(limit));
        while self.cluster.now() < end {
            self.step_toward(end);
            if stop(self) {
                return true;
            }
        }
        false
    }

    /// No queued, in-flight, or half-deployed work anywhere: every replica
    /// is live and the cluster itself has drained.
    pub fn quiescent(&self) -> bool {
        self.inflight.is_empty()
            && self.functions.iter().all(|f| {
                f.queue.is_empty() && f.replicas.iter().all(|r| r.state == ReplicaState::Live)
            })
            && self.cluster.quiescent()
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.cluster.now()
    }

    /// The fleet underneath (latency trackers, fabric stats, directories).
    pub fn cluster(&self) -> &ClusterSystem {
        &self.cluster
    }

    /// The admission stage (admitted/shed counters).
    pub fn admission(&self) -> &TenantAdmission {
        &self.admission
    }

    /// One board's bitstream cache.
    pub fn cache(&self, board: u16) -> &BitstreamCache {
        &self.boards[board as usize].cache
    }

    /// One board's elastic-area utilisation (binding resource), `[0, 1]`.
    pub fn board_utilisation(&self, board: u16) -> f64 {
        let l = &self.boards[board as usize];
        l.used.utilisation_of(&l.budget)
    }

    /// Registered function count.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Live replica count for one function.
    pub fn live_replicas(&self, fn_idx: usize) -> usize {
        self.functions[fn_idx]
            .replicas
            .iter()
            .filter(|r| r.state == ReplicaState::Live)
            .count()
    }

    /// Fetching or loading replica count for one function.
    pub fn pending_replicas(&self, fn_idx: usize) -> usize {
        self.functions[fn_idx].replicas.len() - self.live_replicas(fn_idx)
    }

    /// Point-in-time stats for one function.
    pub fn stats(&self, fn_idx: usize) -> FaasStats {
        let f = &self.functions[fn_idx];
        let live = self.live_replicas(fn_idx);
        FaasStats {
            invocations: f.invocations,
            cold_invocations: f.cold_invocations,
            completed_ok: f.completed_ok,
            completed_err: f.completed_err,
            expired: f.expired,
            deploys: f.deploys,
            reclaims: f.reclaims,
            live,
            pending: f.replicas.len() - live,
            queue_depth: f.queue.len(),
        }
    }

    /// Completed invocations since the last call, in completion order.
    pub fn take_finished(&mut self) -> Vec<Finished> {
        std::mem::take(&mut self.finished)
    }

    /// Cross-checks every ledger against the replica sets and the
    /// cluster's capability state. Used by tests (including the warm-pool
    /// proptest) after arbitrary interleavings.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (bi, l) in self.boards.iter().enumerate() {
            let b = bi as u16;
            let mut used = Area::ZERO;
            let mut nodes = BTreeSet::new();
            for f in &self.functions {
                let on_board: Vec<&Replica> = f.replicas.iter().filter(|r| r.board == b).collect();
                if on_board.len() > 1 {
                    return Err(format!(
                        "fn `{}` has {} replicas on board {b}",
                        f.spec.name,
                        on_board.len()
                    ));
                }
                for r in on_board {
                    used += f.spec.footprint;
                    if !nodes.insert(r.node) {
                        return Err(format!("node {:?} on board {b} double-booked", r.node));
                    }
                    if l.free_nodes.contains(&r.node) {
                        return Err(format!(
                            "node {:?} on board {b} both free and occupied",
                            r.node
                        ));
                    }
                    if r.state == ReplicaState::Live && !self.cluster.has_local_cap(b, f.service) {
                        return Err(format!(
                            "live replica of `{}` on board {b} has no gateway cap",
                            f.spec.name
                        ));
                    }
                }
                if f.replicas.iter().all(|r| r.board != b)
                    && self.cluster.has_local_cap(b, f.service)
                {
                    return Err(format!(
                        "board {b} holds a cap for `{}` with no replica",
                        f.spec.name
                    ));
                }
            }
            if used != l.used {
                return Err(format!(
                    "board {b} ledger says {} used, replicas say {used}",
                    l.used
                ));
            }
            if !used.fits_in(&l.budget) {
                return Err(format!("board {b} over budget: {used} > {}", l.budget));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apiary_accel::apps::echo::echo;

    fn spec(name: &str, luts: u64, bytes: u64) -> FunctionSpec {
        FunctionSpec {
            name: name.to_string(),
            footprint: Area::logic(luts, luts),
            bitstream_bytes: bytes,
            app: AppId(1),
            factory: Rc::new(|| Box::new(echo(40))),
        }
    }

    fn small_system() -> FaasSystem {
        FaasSystem::new(FaasConfig {
            cluster: ClusterConfig {
                boards: 2,
                ..ClusterConfig::default()
            },
            autoscale_interval: 1_000,
            idle_intervals_to_zero: 2,
            ..FaasConfig::default()
        })
    }

    #[test]
    fn cold_then_warm_invocation() {
        let mut s = small_system();
        let f = s.register(spec("f", 50_000, 4_096));
        assert_eq!(
            s.invoke(f, 1, 0, vec![0; 32]),
            InvokeOutcome::Queued { cold: true }
        );
        assert!(s.run_until(60_000, |s| s.stats(0).completed_ok == 1));
        let st = s.stats(f);
        assert_eq!(st.live, 1);
        assert_eq!(st.deploys, 1);
        // Second invocation rides the warm replica.
        let out = s.invoke(f, 1, 0, vec![0; 32]);
        assert!(
            matches!(
                out,
                InvokeOutcome::Submitted | InvokeOutcome::Queued { cold: false }
            ),
            "{out:?}"
        );
        assert!(s.run_until(60_000, |s| s.stats(0).completed_ok == 2));
        assert!(s.cold_latency.histogram().p50() > s.warm_latency.histogram().p50());
        s.check_invariants().unwrap();
    }

    #[test]
    fn scale_to_zero_then_cold_reinvoke() {
        let mut s = small_system();
        let f = s.register(spec("f", 50_000, 4_096));
        s.invoke(f, 1, 0, vec![0; 32]);
        assert!(s.run_until(60_000, |s| s.quiescent()));
        assert_eq!(s.live_replicas(f), 1);
        // Idle long enough: the autoscaler reclaims down to zero and the
        // area ledger returns to empty.
        assert!(s.run_until(60_000, |s| s.live_replicas(0) == 0));
        assert_eq!(s.pending_replicas(f), 0);
        assert_eq!(s.stats(f).reclaims, 1);
        assert_eq!(s.board_utilisation(0) + s.board_utilisation(1), 0.0);
        s.check_invariants().unwrap();
        // The tombstone means no stale directory entry answers; the next
        // invocation is cold again and succeeds.
        let out = s.invoke(f, 1, 0, vec![0; 32]);
        assert_eq!(out, InvokeOutcome::Queued { cold: true });
        assert!(s.run_until(60_000, |s| s.stats(0).completed_ok == 2));
        assert_eq!(s.stats(f).cold_invocations, 2);
        s.check_invariants().unwrap();
    }

    #[test]
    fn cache_hit_skips_the_fetch() {
        let mut s = small_system();
        let f = s.register(spec("f", 50_000, 8_192));
        s.invoke(f, 1, 0, vec![0; 32]);
        assert!(s.run_until(80_000, |s| s.stats(0).completed_ok == 1));
        let first = s.take_finished()[0];
        let first_lat = first.finished_at - first.arrival;
        assert!(s.run_until(80_000, |s| s.live_replicas(0) == 0));
        // Re-invoke after scale-to-zero: if placement lands on the board
        // that still caches the bitstream, the store fetch is skipped.
        s.invoke(f, 1, 0, vec![0; 32]);
        assert!(s.run_until(80_000, |s| s.stats(0).completed_ok == 2));
        let second = s.take_finished()[0];
        let second_lat = second.finished_at - second.arrival;
        let hits: u64 = (0..2).map(|b| s.cache(b).hits).sum();
        let misses: u64 = (0..2).map(|b| s.cache(b).misses).sum();
        assert_eq!(hits + misses, 2, "two deploys, two lookups");
        if hits == 1 {
            // The hit skipped the 8192-byte fetch (4096 cycles at
            // 2 B/cycle): the second cold start must be visibly cheaper.
            assert!(
                second_lat + 2_000 < first_lat,
                "hit cold start {second_lat} not cheaper than miss {first_lat}"
            );
        }
        s.check_invariants().unwrap();
    }

    #[test]
    fn queue_depth_grows_the_pool_across_boards() {
        let mut s = small_system();
        let f = s.register(spec("f", 50_000, 4_096));
        // A burst far deeper than one replica's target queue.
        for i in 0..24 {
            s.invoke(f, 1, (i % 2) as u16, vec![0; 32]);
        }
        assert!(s.run_until(120_000, |s| s.quiescent()), "burst drains");
        let st = s.stats(f);
        assert!(st.deploys >= 2, "autoscaler grew the pool: {st:?}");
        assert!(st.completed_ok + st.completed_err + st.expired >= 20);
        s.check_invariants().unwrap();
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut s = small_system();
            let f = s.register(spec("f", 50_000, 4_096));
            let g = s.register(spec("g", 80_000, 6_000));
            for i in 0u32..30 {
                s.invoke(
                    if i % 3 == 0 { g } else { f },
                    i % 2,
                    (i % 2) as u16,
                    vec![0; 16],
                );
                s.run(137);
            }
            s.run_until(200_000, |s| s.quiescent());
            format!(
                "{:?}|{:?}|{}|{}|{:?}",
                s.stats(f),
                s.stats(g),
                s.cold_latency.histogram().p99(),
                s.warm_latency.histogram().p99(),
                s.now()
            )
        };
        assert_eq!(run(), run());
    }
}
