//! Warm-pool state-machine proptest.
//!
//! The orchestrator's lifecycle — register → deploy → invoke → idle →
//! reclaim → cold re-invoke — is driven through random interleavings of
//! invocations and time (which is what makes autoscaler boundaries,
//! fetches, ICAP loads, republishes and reclaims overlap in arbitrary
//! orders). After every step [`FaasSystem::check_invariants`] cross-checks
//! replica counts against the elastic area ledgers and the gateway
//! capability state: a live replica always has a cap, a torn-down one
//! never does, footprints always sum to the ledger and fit the budget.
//! After the drain, invocation conservation must hold, every pool must
//! scale to zero, and a final cold invocation must still succeed.

use apiary_accel::apps::echo::echo;
use apiary_cluster::ClusterConfig;
use apiary_core::AppId;
use apiary_faas::{AdmissionConfig, FaasConfig, FaasSystem, FunctionSpec};
use apiary_resources::Area;
use proptest::prelude::*;
use std::rc::Rc;

const FUNCTIONS: usize = 3;
const BOARDS: u16 = 2;
const AUTOSCALE: u64 = 1_000;

#[derive(Debug, Clone)]
enum Op {
    /// Invoke function `f` as `tenant`, entering at board `origin`.
    Invoke { f: usize, tenant: u32, origin: u16 },
    /// Let the fleet run for `cycles`.
    Advance { cycles: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..FUNCTIONS, 0u32..2, 0..BOARDS).prop_map(|(f, tenant, origin)| Op::Invoke {
            f,
            tenant,
            origin
        }),
        (1u64..4_000).prop_map(|cycles| Op::Advance { cycles }),
    ]
}

fn build() -> FaasSystem {
    let mut s = FaasSystem::new(FaasConfig {
        cluster: ClusterConfig {
            boards: BOARDS,
            ..ClusterConfig::default()
        },
        autoscale_interval: AUTOSCALE,
        idle_intervals_to_zero: 2,
        // Generous ingress: this test is about the pool machinery, not
        // shedding (admission has its own unit tests).
        admission: AdmissionConfig {
            rate_milli_inv_per_cycle: 1_000,
            burst_invocations: 64,
        },
        ..FaasConfig::default()
    });
    for i in 0..FUNCTIONS {
        let cost = 30 + 20 * i as u64;
        s.register(FunctionSpec {
            name: format!("fn{i}"),
            footprint: Area::logic(40_000 + 30_000 * i as u64, 50_000),
            bitstream_bytes: 4_096 + 2_048 * i as u64,
            app: AppId(i as u32 + 1),
            factory: Rc::new(move || Box::new(echo(cost))),
        });
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn warm_pool_consistent_under_any_interleaving(
        ops in prop::collection::vec(arb_op(), 1..40)
    ) {
        let mut s = build();
        for op in &ops {
            match *op {
                Op::Invoke { f, tenant, origin } => {
                    s.invoke(f, tenant, origin, vec![0u8; 24]);
                }
                Op::Advance { cycles } => s.run(cycles),
            }
            if let Err(e) = s.check_invariants() {
                prop_assert!(false, "after {op:?}: {e}");
            }
        }

        // Drain: all queued and in-flight work resolves.
        prop_assert!(s.run_until(400_000, |s| s.quiescent()), "drain");
        if let Err(e) = s.check_invariants() {
            prop_assert!(false, "after drain: {e}");
        }
        // Conservation: every admitted invocation completed one way —
        // reply, error, or queue expiry. Nothing lost, nothing doubled.
        for f in 0..FUNCTIONS {
            let st = s.stats(f);
            prop_assert_eq!(
                st.invocations,
                st.completed_ok + st.completed_err + st.expired,
                "conservation for fn{}: {:?}", f, st
            );
            prop_assert_eq!(st.queue_depth, 0);
        }

        // Idle long enough and every pool scales to zero: tiles and area
        // all returned, no capability left behind (check_invariants
        // verifies cap absence per empty board).
        s.run(AUTOSCALE * 6 * (BOARDS as u64 + 1));
        for f in 0..FUNCTIONS {
            prop_assert_eq!(s.live_replicas(f), 0, "fn{} not reclaimed", f);
            prop_assert_eq!(s.pending_replicas(f), 0);
        }
        for b in 0..BOARDS {
            prop_assert!(s.board_utilisation(b) == 0.0, "board {} not empty", b);
        }
        if let Err(e) = s.check_invariants() {
            prop_assert!(false, "after scale-to-zero: {e}");
        }

        // The pool still works from cold: one more invocation round-trips.
        let before = s.stats(0).completed_ok;
        s.invoke(0, 0, 0, vec![0u8; 24]);
        prop_assert!(
            s.run_until(400_000, |s| s.stats(0).completed_ok == before + 1),
            "cold re-invoke after scale-to-zero"
        );
        if let Err(e) = s.check_invariants() {
            prop_assert!(false, "after cold re-invoke: {e}");
        }
    }
}
