//! The paper's §2 scenario: a video encoding service composed with a
//! third-party compression accelerator, entirely through capabilities.
//!
//! Frames enter at an ingress tile, are encoded, compressed, and returned;
//! every frame is verified bit-exact after decompress+decode.
//!
//! Run with: `cargo run --example video_pipeline`

use apiary::accel::apps::compress::{compressor, CompressorAccel};
use apiary::accel::apps::idle::idle;
use apiary::accel::apps::video::{encode_request, video_encoder, VideoEncoderAccel};
use apiary::accel::codec::{lz, video};
use apiary::core::{AppId, FaultPolicy, System, SystemConfig};
use apiary::monitor::wire;
use apiary::noc::{NodeId, TrafficClass};

const FRAMES: u64 = 12;
const W: u32 = 64;
const H: u32 = 48;

fn main() {
    let mut sys = System::new(SystemConfig::default());
    let ingress = NodeId(0);
    let enc = NodeId(1);
    let comp = NodeId(2);

    sys.install(ingress, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(
        enc,
        Box::new(video_encoder(0)),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free");
    sys.install(
        comp,
        Box::new(compressor()),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free");

    // Wire the pipeline: ingress -> encoder -next-> compressor -next-> ingress.
    // Neither accelerator knows what its neighbours are; the kernel points
    // "next" capabilities and the data flows.
    let to_enc = sys.connect(ingress, enc, false).expect("same app");
    sys.connect_env(enc, comp, "next", false).expect("same app");
    sys.connect_env(comp, ingress, "next", false)
        .expect("same app");
    println!("Pipeline wired:\n{}", sys.render_map());

    // Push frames through, one at a time, verifying each result.
    let mut total_raw = 0usize;
    let mut total_out = 0usize;
    for tag in 0..FRAMES {
        let frame = video::Frame::test_pattern(W, H, tag);
        total_raw += frame.pixels.len();
        let now = sys.now();
        sys.tile_mut(ingress)
            .monitor
            .send(
                to_enc,
                wire::KIND_REQUEST,
                tag,
                TrafficClass::Bulk,
                encode_request(&frame),
                now,
            )
            .expect("send accepted");
        sys.run_until_idle(10_000_000);
        let result = sys
            .tile_mut(ingress)
            .monitor
            .recv()
            .expect("pipeline produced a result");
        assert_eq!(result.msg.tag, tag, "tags follow frames");
        total_out += result.msg.payload.len();

        // Verify: decompress (stage 2 inverse), then decode (stage 1 inverse).
        let stream = lz::decompress(&result.msg.payload).expect("valid LZ");
        let decoded = video::decode(&stream).expect("valid video stream");
        assert_eq!(decoded, frame, "frame {tag} corrupted");
        println!(
            "frame {tag:>2}: {} px -> {} B encoded+compressed (verified)",
            frame.pixels.len(),
            result.msg.payload.len()
        );
    }

    let enc_stats = sys
        .accel_as::<VideoEncoderAccel>(enc)
        .expect("installed")
        .service()
        .clone();
    let comp_stats = sys
        .accel_as::<CompressorAccel>(comp)
        .expect("installed")
        .service()
        .clone();
    println!(
        "\n{} frames, {} raw bytes -> {} wire bytes ({:.2}x end-to-end)",
        FRAMES,
        total_raw,
        total_out,
        total_raw as f64 / total_out as f64
    );
    println!(
        "encoder: {} frames, {:.2}x;  compressor: {} blocks, {:.2}x;  {} cycles total",
        enc_stats.frames,
        enc_stats.bytes_in as f64 / enc_stats.bytes_out as f64,
        comp_stats.blocks,
        comp_stats.ratio(),
        sys.now().as_u64()
    );
}
