//! Multi-tenant KV store (§2's "independent KV-store application").
//!
//! Two mutually distrusting tenants share one KV-store accelerator. The
//! kernel badges each tenant's capability; the monitor stamps the badge
//! into every message; the store namespaces keys by badge. Tenant B can
//! never read tenant A's data — and an unrelated tile with no capability
//! cannot reach the store at all.
//!
//! Run with: `cargo run --example multi_tenant_kv`

use apiary::accel::apps::idle::idle;
use apiary::accel::apps::kv::{self, KvStoreAccel};
use apiary::core::{AppId, FaultPolicy, System, SystemConfig};
use apiary::monitor::wire;
use apiary::noc::{NodeId, TrafficClass};

fn request(sys: &mut System, from: NodeId, cap: apiary::cap::CapRef, tag: u64, payload: Vec<u8>) {
    let now = sys.now();
    sys.tile_mut(from)
        .monitor
        .send(
            cap,
            wire::KIND_REQUEST,
            tag,
            TrafficClass::Request,
            payload,
            now,
        )
        .expect("send accepted");
    sys.run_until_idle(100_000);
}

fn response(sys: &mut System, at: NodeId) -> (u8, Option<Vec<u8>>) {
    let d = sys.tile_mut(at).monitor.recv().expect("response");
    let (status, value) = kv::parse_resp(&d.msg.payload).expect("well formed");
    (status, value.map(|v| v.to_vec()))
}

fn main() {
    let mut sys = System::new(SystemConfig::default());
    let tenant_a = NodeId(0);
    let tenant_b = NodeId(3);
    let stranger = NodeId(12);
    let store = NodeId(9);

    sys.install(tenant_a, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(tenant_b, Box::new(idle()), AppId(2), FaultPolicy::FailStop)
        .expect("free");
    sys.install(stranger, Box::new(idle()), AppId(4), FaultPolicy::FailStop)
        .expect("free");
    sys.install(
        store,
        Box::new(kv::kv_store()),
        AppId(3),
        FaultPolicy::Preempt,
    )
    .expect("free");

    // Tenancy: cross-application connections are explicit and badged.
    let cap_a = sys
        .connect_badged(tenant_a, store, 0xAAAA, true)
        .expect("explicit");
    let cap_b = sys
        .connect_badged(tenant_b, store, 0xBBBB, true)
        .expect("explicit");
    sys.connect(store, tenant_a, true).expect("reply path");
    sys.connect(store, tenant_b, true).expect("reply path");
    // The stranger gets NO capability.

    // Both tenants write the same key name.
    request(
        &mut sys,
        tenant_a,
        cap_a,
        1,
        kv::put_req(b"config", b"tenant A data"),
    );
    assert_eq!(response(&mut sys, tenant_a).0, kv::status::OK);
    request(
        &mut sys,
        tenant_b,
        cap_b,
        1,
        kv::put_req(b"config", b"tenant B data"),
    );
    assert_eq!(response(&mut sys, tenant_b).0, kv::status::OK);

    // Each reads back only its own value.
    request(&mut sys, tenant_a, cap_a, 2, kv::get_req(b"config"));
    let (s, v) = response(&mut sys, tenant_a);
    println!(
        "tenant A reads 'config' -> status {s}, {:?}",
        v.as_deref().map(String::from_utf8_lossy)
    );
    assert_eq!(v.as_deref(), Some(b"tenant A data".as_slice()));

    request(&mut sys, tenant_b, cap_b, 2, kv::get_req(b"config"));
    let (s, v) = response(&mut sys, tenant_b);
    println!(
        "tenant B reads 'config' -> status {s}, {:?}",
        v.as_deref().map(String::from_utf8_lossy)
    );
    assert_eq!(v.as_deref(), Some(b"tenant B data".as_slice()));

    // The stranger cannot even address the store: it has no capability.
    println!(
        "stranger holds {} capabilities -> cannot name the store at all",
        sys.tile(stranger).monitor.caps().live()
    );

    // The store is preemptible: the kernel can swap it out mid-run and the
    // tenants' data survives the context switch.
    let snapshot_bytes = sys.preempt(store).expect("kv store is preemptible");
    println!("preempted the store ({snapshot_bytes} B of externalized state)...");
    sys.run(1_000); // Cover the save/restore downtime.

    request(&mut sys, tenant_a, cap_a, 3, kv::get_req(b"config"));
    let (_, v) = response(&mut sys, tenant_a);
    assert_eq!(v.as_deref(), Some(b"tenant A data".as_slice()));
    println!("tenant A's data survived preemption.");

    // Revocation: the kernel cuts tenant B off; its capability dies.
    sys.tile_mut(tenant_b)
        .monitor
        .revoke_cap(cap_b)
        .expect("live");
    let now = sys.now();
    let err = sys
        .tile_mut(tenant_b)
        .monitor
        .send(
            cap_b,
            wire::KIND_REQUEST,
            9,
            TrafficClass::Request,
            kv::get_req(b"config"),
            now,
        )
        .expect_err("revoked");
    println!("tenant B after revocation -> {err}");

    let kvsvc = sys.accel_as::<KvStoreAccel>(store).expect("installed");
    println!(
        "store holds {} keys across tenants; tenant A: {}, tenant B: {}",
        kvsvc.service().len(),
        kvsvc.service().tenant_len(0xAAAA),
        kvsvc.service().tenant_len(0xBBBB),
    );
}
