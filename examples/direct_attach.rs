//! Direct-attached networking (§1): external clients reach an accelerator
//! through the FPGA's own MAC tile, no CPU anywhere — then the same load
//! is replayed against a Coyote-style host-mediated model for contrast.
//!
//! Run with: `cargo run --example direct_attach`

use apiary::accel::apps::echo::echo;
use apiary::core::{AppId, FaultPolicy, System, SystemConfig};
use apiary::host::{EnergyModel, HostConfig, HostSim};
use apiary::net::{EthernetTile, NetConfig, RequestGen, Workload};
use apiary::noc::NodeId;

const REQUESTS: u64 = 100;
const COMPUTE: u64 = 512;

fn main() {
    // --- Direct-attached path -------------------------------------------
    let mut sys = System::new(SystemConfig::default());
    let mac_node = NodeId(0);
    let svc_node = NodeId(5);

    let mut mac = EthernetTile::new(NetConfig::default());
    // Two external clients on the far end of the wire.
    for (id, seed) in [(1u32, 11u64), (2, 22)] {
        mac.add_client(
            RequestGen::new(
                id,
                80,
                64,
                Workload::Closed {
                    outstanding: 1,
                    think_cycles: 0,
                },
                seed,
            )
            .with_max_requests(REQUESTS / 2),
        );
    }
    sys.install(
        mac_node,
        Box::new(mac),
        apiary::core::process::OS_APP,
        FaultPolicy::FailStop,
    )
    .expect("free");
    sys.install(
        svc_node,
        Box::new(echo(COMPUTE)),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free");
    let flow = sys.connect(mac_node, svc_node, false).expect("OS app");
    sys.connect(svc_node, mac_node, false).expect("reply path");
    sys.accel_as_mut::<EthernetTile>(mac_node)
        .expect("installed")
        .bind_flow(80, flow);

    for _ in 0..50_000_000u64 {
        sys.tick();
        if sys
            .accel_as::<EthernetTile>(mac_node)
            .expect("installed")
            .all_done()
        {
            break;
        }
    }
    let mac = sys.accel_as::<EthernetTile>(mac_node).expect("installed");
    let mut direct_rtt = apiary::sim::Histogram::new();
    for c in mac.clients() {
        direct_rtt.merge(&c.stats.rtt);
    }
    println!("Direct-attached Apiary ({REQUESTS} requests, {COMPUTE}-cycle service):");
    println!("  client RTT: {}", direct_rtt.summary());

    // --- Host-mediated baseline -----------------------------------------
    let cfg = HostConfig {
        fpga_compute_cycles: COMPUTE,
        ..HostConfig::default()
    };
    let mut host = HostSim::new(cfg, 7);
    host.run_closed_loop(REQUESTS, 2, 1);
    let hs = host.stats();
    println!("\nCoyote-like host-mediated baseline (same load):");
    println!("  client RTT: {}", hs.rtt.summary());
    println!(
        "  CPU burned {} cycles mediating ({} cycles/request)",
        hs.cpu_busy_cycles,
        hs.cpu_busy_cycles / REQUESTS
    );

    // --- Comparison -------------------------------------------------------
    let energy = EnergyModel::new();
    let direct_e = energy.direct_energy(COMPUTE * REQUESTS, REQUESTS * 160);
    let host_e = energy.host_energy(hs.cpu_busy_cycles, hs.fpga_busy_cycles, REQUESTS * 128);
    println!("\nComparison:");
    println!(
        "  p50 speedup: {:.2}x   p99 speedup: {:.2}x   energy: {:.2}x",
        hs.rtt.p50() as f64 / direct_rtt.p50() as f64,
        hs.rtt.p99() as f64 / direct_rtt.p99() as f64,
        host_e / direct_e
    );
    println!("  (cycles are 4 ns at 250 MHz; energy is the documented activity proxy)");
}
