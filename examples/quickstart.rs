//! Quickstart: boot an Apiary, install two accelerators, establish IPC
//! with capabilities, and exchange a message.
//!
//! Run with: `cargo run --example quickstart`

use apiary::accel::apps::echo::echo;
use apiary::accel::apps::idle::idle;
use apiary::core::{AppId, FaultPolicy, System, SystemConfig};
use apiary::monitor::wire;
use apiary::noc::{NodeId, TrafficClass};

fn main() {
    // Boot a 4x4 mesh. Tile n15 hosts the memory service; everything else
    // is an empty, reconfigurable accelerator slot.
    let mut sys = System::new(SystemConfig::default());
    println!("Booted Apiary:\n{}", sys.render_map());

    // Install application 1: a client slot and an echo service.
    let client = NodeId(0);
    let server = NodeId(5);
    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("slot n0 free");
    sys.install(server, Box::new(echo(8)), AppId(1), FaultPolicy::FailStop)
        .expect("slot n5 free");

    // IPC must be established explicitly: grant SEND capabilities both ways.
    let to_server = sys.connect(client, server, false).expect("same app");
    sys.connect(server, client, false).expect("reply path");
    println!("Connected {client} <-> {server} with endpoint capabilities.\n");

    // Send a request through the capability. The monitor checks it, stamps
    // the true source, and injects the message into the NoC.
    let now = sys.now();
    sys.tile_mut(client)
        .monitor
        .send(
            to_server,
            wire::KIND_REQUEST,
            /* tag */ 1,
            TrafficClass::Request,
            b"hello, tile 5".to_vec(),
            now,
        )
        .expect("capability is valid");

    // Run the machine until the response returns.
    sys.run_until_idle(100_000);

    let reply = sys.tile_mut(client).monitor.recv().expect("echo responded");
    println!(
        "Got {} from {} after {} cycles: {:?}",
        apiary::monitor::wire::kind_name(reply.msg.kind),
        reply.msg.src,
        sys.now().as_u64(),
        String::from_utf8_lossy(&reply.msg.payload)
    );
    assert_eq!(reply.msg.payload, b"hello, tile 5");

    // Capabilities are the only path: a forged handle is rejected.
    let forged = apiary::cap::CapRef {
        index: 9,
        generation: 0,
    };
    let now = sys.now();
    let err = sys
        .tile_mut(client)
        .monitor
        .send(forged, 1, 2, TrafficClass::Request, vec![], now)
        .expect_err("no authority");
    println!("Forged capability rejected: {err}");
}
