//! Scale-out (§3, §4.1): a service replicated behind a transparent load
//! balancer, plus a multi-context tile hosting independent processes.
//!
//! Run with: `cargo run --example scale_out`

use apiary::accel::apps::balance::{balancer, BalancerAccel};
use apiary::accel::apps::hash::HashService;
use apiary::accel::apps::idle::idle;
use apiary::accel::apps::kv::{self, KvStoreService};
use apiary::accel::apps::multi::MultiService;
use apiary::core::{AppId, FaultPolicy, System, SystemConfig};
use apiary::monitor::wire;
use apiary::noc::{NodeId, TrafficClass};

fn main() {
    let mut sys = System::new(SystemConfig::default());
    let client = NodeId(0);
    let lb = NodeId(5);
    let replicas = [NodeId(6), NodeId(9), NodeId(10)];

    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    sys.install(lb, Box::new(balancer()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    for (i, &r) in replicas.iter().enumerate() {
        // Each replica is itself a multi-context hash engine.
        sys.install(
            r,
            Box::new(MultiService::new(HashService::default)),
            AppId(1),
            FaultPolicy::Preempt,
        )
        .expect("free");
        sys.connect_env(lb, r, &format!("replica{i}"), false)
            .expect("same app");
        sys.connect(r, lb, false).expect("reply path");
    }
    let cap = sys.connect(client, lb, false).expect("same app");
    sys.connect(lb, client, false).expect("reply path");
    println!("Topology:\n{}", sys.render_map());

    // Blast 30 hashing requests through the balancer, yielding to the
    // machine whenever the monitor's outbox backpressures.
    for tag in 0..30u64 {
        loop {
            let now = sys.now();
            match sys.tile_mut(client).monitor.send(
                cap,
                wire::KIND_REQUEST,
                tag,
                TrafficClass::Request,
                format!("payload #{tag}").into_bytes(),
                now,
            ) {
                Ok(()) => break,
                Err(apiary::monitor::SendError::Backpressure) => sys.run(10),
                Err(e) => panic!("send failed: {e}"),
            }
        }
    }
    sys.run_until_idle(1_000_000);

    let mut completed = 0;
    while let Some(d) = sys.tile_mut(client).monitor.recv() {
        assert_eq!(d.msg.kind, wire::KIND_RESPONSE);
        assert_eq!(d.msg.payload.len(), 8, "an FNV digest");
        completed += 1;
    }
    let b = sys.accel_as::<BalancerAccel>(lb).expect("installed");
    println!(
        "{completed} responses; balancer spread {} requests as {:?}",
        b.forwarded, b.per_replica
    );
    assert_eq!(completed, 30);

    // A second scenario: one tile, many processes. A multi-context KV
    // store hosts two contexts distinguished by capability badges.
    let store = NodeId(3);
    sys.install(
        store,
        Box::new(MultiService::new(KvStoreService::new)),
        AppId(2),
        FaultPolicy::Preempt,
    )
    .expect("free");
    let ctx_a = sys
        .connect_badged(client, store, 0xA, true)
        .expect("explicit");
    let ctx_b = sys
        .connect_badged(client, store, 0xB, true)
        .expect("explicit");
    sys.connect(store, client, true).expect("reply path");

    for (cap, val) in [(ctx_a, "from context A"), (ctx_b, "from context B")] {
        let now = sys.now();
        sys.tile_mut(client)
            .monitor
            .send(
                cap,
                wire::KIND_REQUEST,
                99,
                TrafficClass::Request,
                kv::put_req(b"who", val.as_bytes()),
                now,
            )
            .expect("send accepted");
        sys.run_until_idle(100_000);
        sys.tile_mut(client).monitor.recv().expect("ack");
    }
    let now = sys.now();
    sys.tile_mut(client)
        .monitor
        .send(
            ctx_a,
            wire::KIND_REQUEST,
            100,
            TrafficClass::Request,
            kv::get_req(b"who"),
            now,
        )
        .expect("send accepted");
    sys.run_until_idle(100_000);
    let d = sys.tile_mut(client).monitor.recv().expect("value");
    let (_, v) = kv::parse_resp(&d.msg.payload).expect("well formed");
    println!(
        "context A reads back: {:?} (context B's write stayed in its own process)",
        v.map(String::from_utf8_lossy)
    );
    assert_eq!(v, Some(b"from context A".as_slice()));
}
