//! Fault handling (§4.4): fail-stop vs preemption, side by side.
//!
//! Two identical faulty services run under the two policies. When each one
//! faults, watch what the rest of the system sees: the fail-stop tile
//! answers with errors until it is reconfigured; the preemptible tile is
//! context-swapped and keeps serving. A bystander never notices either.
//!
//! Run with: `cargo run --example fault_injection`

use apiary::accel::apps::echo::echo;
use apiary::accel::apps::faulty::faulty;
use apiary::accel::apps::idle::idle;
use apiary::core::{AppId, FaultPolicy, System, SystemConfig};
use apiary::monitor::{wire, TileState};
use apiary::noc::{NodeId, TrafficClass};

fn send(sys: &mut System, from: NodeId, cap: apiary::cap::CapRef, tag: u64) {
    let now = sys.now();
    sys.tile_mut(from)
        .monitor
        .send(
            cap,
            wire::KIND_REQUEST,
            tag,
            TrafficClass::Request,
            vec![tag as u8],
            now,
        )
        .expect("send accepted");
    sys.run_until_idle(1_000_000);
}

fn describe(sys: &mut System, at: NodeId) -> String {
    match sys.tile_mut(at).monitor.recv() {
        Some(d) if d.msg.kind == wire::KIND_ERROR => {
            format!("ERROR (code {})", d.msg.payload[0])
        }
        Some(d) => format!("ok ({} B)", d.msg.payload.len()),
        None => "no reply (request swallowed by the fault)".to_string(),
    }
}

fn main() {
    let mut sys = System::new(SystemConfig::default());
    let client = NodeId(0);
    let failstop_svc = NodeId(5);
    let preempt_svc = NodeId(6);
    let bystander = NodeId(9);
    let bclient = NodeId(8);

    sys.install(client, Box::new(idle()), AppId(1), FaultPolicy::FailStop)
        .expect("free");
    // Both services fault on their 2nd request.
    sys.install(
        failstop_svc,
        Box::new(faulty(2)),
        AppId(1),
        FaultPolicy::FailStop,
    )
    .expect("free");
    sys.install(
        preempt_svc,
        Box::new(faulty(2)),
        AppId(1),
        FaultPolicy::Preempt,
    )
    .expect("free");
    sys.install(bclient, Box::new(idle()), AppId(2), FaultPolicy::FailStop)
        .expect("free");
    sys.install(
        bystander,
        Box::new(echo(2)),
        AppId(2),
        FaultPolicy::FailStop,
    )
    .expect("free");

    let fs = sys.connect(client, failstop_svc, false).expect("same app");
    sys.connect(failstop_svc, client, false).expect("reply");
    let pr = sys.connect(client, preempt_svc, false).expect("same app");
    sys.connect(preempt_svc, client, false).expect("reply");
    let by = sys.connect(bclient, bystander, false).expect("same app");
    sys.connect(bystander, bclient, false).expect("reply");

    println!("== fail-stop tile ({failstop_svc}) ==");
    send(&mut sys, client, fs, 1);
    println!("request 1 -> {}", describe(&mut sys, client));
    send(&mut sys, client, fs, 2); // Triggers the fault.
    println!("request 2 -> {}", describe(&mut sys, client));
    println!("tile state: {:?}", sys.tile(failstop_svc).monitor.state());
    send(&mut sys, client, fs, 3);
    println!("request 3 -> {}", describe(&mut sys, client));

    println!("\nkernel reconfigures {failstop_svc} with a fresh accelerator...");
    let done = sys
        .reconfigure(
            failstop_svc,
            Box::new(echo(2)),
            AppId(1),
            FaultPolicy::FailStop,
            256 << 10, // 256 KiB partial bitstream.
        )
        .expect("reconfigurable");
    let wait = done - sys.now();
    println!("bitstream load takes {wait} cycles at 4 B/cycle");
    sys.run(wait + 1);
    sys.connect(failstop_svc, client, false)
        .expect("re-wire reply");
    send(&mut sys, client, fs, 4);
    println!(
        "request 4 (after reconfig) -> {}",
        describe(&mut sys, client)
    );

    println!("\n== preemptible tile ({preempt_svc}) ==");
    send(&mut sys, client, pr, 1);
    println!("request 1 -> {}", describe(&mut sys, client));
    send(&mut sys, client, pr, 2); // Triggers the fault -> context swap.
    println!("request 2 -> {}", describe(&mut sys, client));
    let rec = sys.tile(preempt_svc).faults[0];
    println!(
        "fault handled by {:?} (tile stayed {:?})",
        rec.action,
        sys.tile(preempt_svc).monitor.state()
    );
    sys.run(1_000); // Cover the swap downtime.
    send(&mut sys, client, pr, 3);
    println!("request 3 (after swap) -> {}", describe(&mut sys, client));
    assert_eq!(sys.tile(preempt_svc).monitor.state(), TileState::Running);

    println!("\n== bystander (different application) ==");
    send(&mut sys, bclient, by, 1);
    println!("bystander request -> {}", describe(&mut sys, bclient));
    println!(
        "bystander faults recorded: {} (containment held)",
        sys.tile(bystander).faults.len()
    );
}
