//! A tiny, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment cannot reach a crates.io mirror, so the real
//! criterion is unavailable. This shim implements the API surface used by
//! `crates/bench/benches/micro.rs` — `criterion_group!`, `criterion_main!`,
//! `Criterion::bench_function`, `Bencher::{iter, iter_batched,
//! iter_batched_ref}` and `BatchSize` — with a simple time-boxed runner
//! that prints mean ns/iter. It produces no statistical analysis, plots or
//! HTML reports; it exists so `cargo bench` (and `cargo test --benches`)
//! builds and runs offline.

use std::time::{Duration, Instant};

/// How batched setup cost relates to the routine; the shim only uses this
/// to pick a batch count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

impl BatchSize {
    fn batch_len(self) -> u64 {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    /// Total time the measured routine ran.
    elapsed: Duration,
    /// Iterations measured.
    iters: u64,
    /// Measurement budget per benchmark.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Bencher {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Times `routine` repeatedly until the budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (uncounted).
        std::hint::black_box(routine());
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            self.iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.budget || self.iters >= 1_000_000 {
                self.elapsed = elapsed;
                break;
            }
        }
    }

    /// Times `routine` on inputs built (outside the timed region) by
    /// `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let deadline = Instant::now() + self.budget;
        let batch = size.batch_len();
        while Instant::now() < deadline && self.iters < 1_000_000 {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.elapsed += start.elapsed();
            self.iters += batch;
        }
    }

    /// As [`Bencher::iter_batched`], but the routine borrows its input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut warm = setup();
        std::hint::black_box(routine(&mut warm));
        let deadline = Instant::now() + self.budget;
        let batch = size.batch_len();
        while Instant::now() < deadline && self.iters < 1_000_000 {
            let mut inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs.iter_mut() {
                std::hint::black_box(routine(input));
            }
            self.elapsed += start.elapsed();
            self.iters += batch;
        }
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }
}

/// The benchmark registry/driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep full `cargo bench` runs to seconds, not minutes.
        Criterion {
            budget: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Runs `f` as one named benchmark and prints the result.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        println!(
            "bench {name:<40} {:>12.1} ns/iter ({} iters)",
            b.ns_per_iter(),
            b.iters
        );
        self
    }
}

/// Groups benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
        };
        let mut hits = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                hits += 1;
            })
        });
        assert!(hits > 0);
    }

    #[test]
    fn batched_variants_run() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
        };
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        c.bench_function("batched_ref", |b| {
            b.iter_batched_ref(|| vec![1u8; 16], |v| v.pop(), BatchSize::PerIteration)
        });
    }
}
