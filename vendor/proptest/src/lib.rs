//! A small, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no network access to a
//! crates.io mirror, so the real `proptest` cannot be resolved. This crate
//! implements exactly the slice of the proptest API the test suite uses —
//! `proptest!`, `Strategy`, integer-range strategies, tuples,
//! `prop::collection::vec`, `any`, `prop_oneof!`, `prop_map` and the
//! `prop_assert*` macros — on top of a deterministic splitmix64 generator.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case panics with the generated inputs via
//!   the normal assertion message; `*.proptest-regressions` files are not
//!   read or written (the checked-in regressions are also encoded as plain
//!   named unit tests, see `tests/isolation.rs`).
//! - **Deterministic seeding.** The RNG seed is derived from the test's
//!   module path and name, so every run explores the same cases. This keeps
//!   CI reproducible, which the simulator's own determinism tests rely on.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop`, exposing the sub-modules the
    /// tests reach through it (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// The test-defining macro. Supports the forms used in this repository:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0u64..100, mut v in prop::collection::vec(any::<u8>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                // The body runs in a closure returning Result so that
                // `return Err(TestCaseError::...)` works as in real
                // proptest; assertion macros panic directly.
                let __outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    ::std::panic!("{}", e);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

/// `prop_oneof![a, b, c]`: uniformly picks one of the strategies per value.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Assertion macros: without shrinking these are plain assertions.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::std::assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::std::assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::std::assert_ne!($($t)*) };
}
