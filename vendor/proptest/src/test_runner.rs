//! Deterministic test driving: configuration and the RNG.

/// Run configuration. Only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A property-body failure. The shim does not shrink; failures simply
/// propagate as panics from the driving macro.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed case with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError(reason.into())
    }

    /// Real proptest discards and regenerates; the shim treats a rejected
    /// case like a failure so it cannot pass silently.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "test case failed: {}", self.0)
    }
}

/// A splitmix64 generator seeded from the test's qualified name, so a given
/// property always replays the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a), typically
    /// `module_path!() :: test_name`.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h | 1, // Never all-zero.
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[0, bound]` (handles the full-domain case).
    pub fn below_inclusive(&mut self, bound: u64) -> u64 {
        if bound == u64::MAX {
            self.next_u64()
        } else {
            self.below(bound + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_diverge() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::z");
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::deterministic("bound");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            assert!(r.below_inclusive(3) <= 3);
        }
        let _ = r.below_inclusive(u64::MAX);
    }
}
