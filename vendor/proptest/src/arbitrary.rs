//! `any::<T>()` for the primitive types the suite generates.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bools_take_both_values() {
        let mut rng = TestRng::deterministic("bools");
        let s = any::<bool>();
        let draws: Vec<bool> = (0..64).map(|_| s.new_value(&mut rng)).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }
}
