//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive minimum length.
    pub min: usize,
    /// Inclusive maximum length.
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below_inclusive(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_the_range() {
        let mut rng = TestRng::deterministic("veclen");
        let s = vec(0u8..10, 2..6);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
        }
    }

    #[test]
    fn zero_length_allowed() {
        let mut rng = TestRng::deterministic("veczero");
        let s = vec(0u8..10, 0..2);
        let mut saw_empty = false;
        for _ in 0..100 {
            saw_empty |= s.new_value(&mut rng).is_empty();
        }
        assert!(saw_empty);
    }
}
