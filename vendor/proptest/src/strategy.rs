//! The `Strategy` trait and the combinators the test suite uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of random values. Unlike real proptest there is no value
/// tree: strategies produce plain values and failures do not shrink.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.new_value(rng)
    }
}

/// Uniform choice between strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].new_value(rng)
    }
}

/// Integer ranges are strategies, as in real proptest.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u64;
                (*self.start() as i128 + rng.below_inclusive(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Tuples of strategies generate tuples of values, left to right.
macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let v = (3u16..9).new_value(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0u16..=0x7f).new_value(&mut rng);
            assert!(w <= 0x7f);
            let s = (-5i32..5).new_value(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::deterministic("compose");
        let s = (0u8..4, 10u64..20).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((10..24).contains(&v));
        }
    }

    #[test]
    fn union_picks_every_arm_eventually() {
        let mut rng = TestRng::deterministic("union");
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
